package kernel

// NDIS/NT status codes, matching the Windows numeric conventions so that
// corpus drivers read naturally.
const (
	StatusSuccess      uint32 = 0x00000000
	StatusPending      uint32 = 0x00000103
	StatusFailure      uint32 = 0xC0000001
	StatusResources    uint32 = 0xC000009A
	StatusNotSupported uint32 = 0xC00000BB
	StatusInvalidOID   uint32 = 0xC0010017 // NDIS_STATUS_INVALID_OID
	StatusBadValue     uint32 = 0xC0010010
)

// IRQL levels. Spinlock acquisition raises to DispatchLevel; DPC and timer
// callbacks run at DispatchLevel; interrupt service routines run at
// DeviceLevel. Pageable memory must only be touched at PassiveLevel.
const (
	PassiveLevel  uint8 = 0
	APCLevel      uint8 = 1
	DispatchLevel uint8 = 2
	DeviceLevel   uint8 = 5
	HighLevel     uint8 = 15
)

// IrqlName returns the conventional name of an IRQL.
func IrqlName(irql uint8) string {
	switch irql {
	case PassiveLevel:
		return "PASSIVE_LEVEL"
	case APCLevel:
		return "APC_LEVEL"
	case DispatchLevel:
		return "DISPATCH_LEVEL"
	case DeviceLevel:
		return "DEVICE_LEVEL"
	case HighLevel:
		return "HIGH_LEVEL"
	default:
		return "IRQL?"
	}
}

// BugCheck codes used by the simulated kernel's own consistency checks
// (the "guest OS-level checks" of §3.1.2 — our Driver Verifier analogue).
const (
	BugCheckIrqlNotLessOrEqual  uint32 = 0x0000000A
	BugCheckBadPoolCaller       uint32 = 0x000000C2
	BugCheckSpinlockNotOwned    uint32 = 0x00000010
	BugCheckTimerNotInitialized uint32 = 0x000000DE
	BugCheckDriverFault         uint32 = 0x000000D1 // DRIVER_IRQL_NOT_LESS_OR_EQUAL
	BugCheckManual              uint32 = 0x000000E2
)

// IRP minor codes dispatched to a storage miniport's IRP_MJ_PNP and
// IRP_MJ_POWER handlers, matching the Windows numeric conventions.
const (
	IrpMnStartDevice     uint32 = 0x00 // IRP_MN_START_DEVICE
	IrpMnRemoveDevice    uint32 = 0x02 // IRP_MN_REMOVE_DEVICE
	IrpMnSurpriseRemoval uint32 = 0x17 // IRP_MN_SURPRISE_REMOVAL
	IrpMnSetPower        uint32 = 0x02 // IRP_MN_SET_POWER (under IRP_MJ_POWER)
)

// Device power states (DEVICE_POWER_STATE).
const (
	PowerDeviceD0 uint32 = 1 // fully on
	PowerDeviceD3 uint32 = 4 // off
)

// NDIS parameter types for NdisReadConfiguration.
const (
	ParamInteger    uint32 = 1
	ParamHexInteger uint32 = 2
	ParamString     uint32 = 3
)

// Well-known OIDs (a small subset of the NDIS object identifiers) used by
// the corpus network drivers' QueryInformation/SetInformation handlers.
const (
	OIDGenSupportedList    uint32 = 0x00010101
	OIDGenHardwareStatus   uint32 = 0x00010102
	OIDGenMediaSupported   uint32 = 0x00010103
	OIDGenMaxFrameSize     uint32 = 0x00010106
	OIDGenLinkSpeed        uint32 = 0x00010107
	OIDGenCurrentPacketFil uint32 = 0x0001010E
	OIDGenCurrentLookahead uint32 = 0x0001010F
	OID802_3PermanentAddr  uint32 = 0x01010101
	OID802_3CurrentAddr    uint32 = 0x01010102
	OID802_3MulticastList  uint32 = 0x01010103
)
