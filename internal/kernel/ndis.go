package kernel

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/vm"
)

// readU32 reads a guest word for the concrete kernel, concretizing lazily
// if the driver stored something symbolic there (§3.2: symbolic values are
// concretized only when concretely running code actually reads them).
func (k *Kernel) readU32(s *vm.State, addr uint32) (uint32, error) {
	return k.M.Concretize(s, s.Mem.Read(addr, 4), fmt.Sprintf("mem[%#x]", addr))
}

func (k *Kernel) writeU32(s *vm.State, addr, v uint32) {
	s.Mem.Write(addr, 4, expr.Const(v))
}

// registerNdisAPI installs the network driver API (the NDIS analogue).
func registerNdisAPI(k *Kernel) {
	k.Register("NdisMRegisterMiniport", ndisMRegisterMiniport)
	k.Register("NdisOpenConfiguration", ndisOpenConfiguration)
	k.Register("NdisReadConfiguration", ndisReadConfiguration)
	k.Register("NdisCloseConfiguration", ndisCloseConfiguration)
	k.Register("NdisAllocateMemoryWithTag", ndisAllocateMemoryWithTag)
	k.Register("NdisFreeMemory", ndisFreeMemory)
	k.Register("NdisAllocateSpinLock", ndisAllocateSpinLock)
	k.Register("NdisFreeSpinLock", ndisFreeSpinLock)
	k.Register("NdisAcquireSpinLock", ndisAcquireSpinLock)
	k.Register("NdisReleaseSpinLock", ndisReleaseSpinLock)
	k.Register("NdisDprAcquireSpinLock", ndisDprAcquireSpinLock)
	k.Register("NdisDprReleaseSpinLock", ndisDprReleaseSpinLock)
	k.Register("NdisMInitializeTimer", ndisMInitializeTimer)
	k.Register("NdisMSetTimer", ndisMSetTimer)
	k.Register("NdisMCancelTimer", ndisMCancelTimer)
	k.Register("NdisMRegisterInterrupt", ndisMRegisterInterrupt)
	k.Register("NdisMDeregisterInterrupt", ndisMDeregisterInterrupt)
	k.Register("NdisMMapIoSpace", ndisMMapIoSpace)
	k.Register("NdisMRegisterIoPortRange", ndisMRegisterIoPortRange)
	k.Register("NdisAllocatePacketPool", ndisAllocatePacketPool)
	k.Register("NdisFreePacketPool", ndisFreePacketPool)
	k.Register("NdisAllocatePacket", ndisAllocatePacket)
	k.Register("NdisFreePacket", ndisFreePacket)
	k.Register("NdisAllocateBufferPool", ndisAllocateBufferPool)
	k.Register("NdisFreeBufferPool", ndisFreeBufferPool)
	k.Register("NdisAllocateBuffer", ndisAllocateBuffer)
	k.Register("NdisFreeBuffer", ndisFreeBuffer)
	k.Register("NdisMAllocateSharedMemory", ndisMAllocateSharedMemory)
	k.Register("NdisMFreeSharedMemory", ndisMFreeSharedMemory)
	k.Register("NdisReadNetworkAddress", ndisReadNetworkAddress)
	k.Register("NdisStallExecution", nop)
	k.Register("NdisWriteErrorLogEntry", nop)
	k.Register("NdisMSendComplete", nop)
	k.Register("NdisMIndicateReceiveComplete", nop)
	k.Register("NdisZeroMemory", ndisZeroMemory)
	k.Register("NdisMoveMemory", ndisMoveMemory)
	k.Register("NdisGetCurrentSystemTime", ndisGetCurrentSystemTime)
	k.Register("NdisMSleep", ndisMSleep)
}

func nop(k *Kernel, s *vm.State) ([]*vm.State, error) {
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMRegisterMiniport(charsPtr) reads the driver's entry-point table:
// { Initialize, Send, QueryInformation, SetInformation, Halt, ISR,
//
//	HandleInterrupt }, seven words.
func ndisMRegisterMiniport(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	var words [7]uint32
	for i := range words {
		words[i], err = k.readU32(s, ptr+uint32(i*4))
		if err != nil {
			return nil, err
		}
	}
	ks := Of(s)
	ks.Miniport = &MiniportChars{
		InitializePC: words[0], SendPC: words[1], QueryInfoPC: words[2],
		SetInfoPC: words[3], HaltPC: words[4], ISRPC: words[5], HandleIntPC: words[6],
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisOpenConfiguration(statusPtr, handlePtr)
func ndisOpenConfiguration(k *Kernel, s *vm.State) ([]*vm.State, error) {
	statusPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	handlePtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	h := ks.NewHandle()
	ks.ConfigHandles[h] = ConfigHandle{Label: "NdisOpenConfiguration", PC: s.PC}
	k.writeU32(s, statusPtr, StatusSuccess)
	k.writeU32(s, handlePtr, h)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisReadConfiguration(statusPtr, paramPtrPtr, handle, namePtr, type)
//
// Returns a kernel-owned parameter block { Type u32, IntegerData u32 }.
// The stock annotation set replaces IntegerData with a symbolic value
// (the paper's flagship annotation example).
func ndisReadConfiguration(k *Kernel, s *vm.State) ([]*vm.State, error) {
	statusPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	paramPtrPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	handle, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	namePtr, err := k.ArgConcrete(s, 3)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if _, open := ks.ConfigHandles[handle]; !open {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisReadConfiguration on closed or invalid handle %#x", handle)
	}
	name, ok := s.Mem.ReadCString(namePtr, 128)
	if !ok {
		return nil, vm.Faultf("memory", s.PC, "unterminated or symbolic configuration name at %#x", namePtr)
	}
	val, present := ks.Registry[name]
	if !present {
		k.writeU32(s, statusPtr, StatusFailure)
		k.SetRet(s, StatusFailure)
		return nil, nil
	}
	block, err := ks.HeapAlloc(8, "cfgparam:"+name, "param", s.ICount, s.PC)
	if err != nil {
		return nil, vm.Faultf("engine", s.PC, "%v", err)
	}
	// Parameter blocks are kernel bookkeeping, not driver-leakable memory.
	delete(ks.Allocs, block)
	k.writeU32(s, block, ParamInteger)
	k.writeU32(s, block+4, val)
	k.writeU32(s, statusPtr, StatusSuccess)
	k.writeU32(s, paramPtrPtr, block)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisCloseConfiguration(k *Kernel, s *vm.State) ([]*vm.State, error) {
	handle, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if _, open := ks.ConfigHandles[handle]; !open {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisCloseConfiguration on invalid handle %#x", handle)
	}
	delete(ks.ConfigHandles, handle)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisAllocateMemoryWithTag(ptrPtr, length, tag) -> status
func ndisAllocateMemoryWithTag(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptrPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	length, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	tag, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	addr, aerr := ks.HeapAlloc(length, fmt.Sprintf("tag%08x", tag), "pool", s.ICount, s.PC)
	if aerr != nil {
		k.writeU32(s, ptrPtr, 0)
		k.SetRet(s, StatusResources)
		return nil, nil
	}
	k.writeU32(s, ptrPtr, addr)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisFreeMemory(ptr, length, flags)
func ndisFreeMemory(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if !ks.HeapFree(ptr) {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisFreeMemory of non-allocated pointer %#x", ptr)
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func lockAt(ks *KState, addr uint32) *Spin {
	sp, ok := ks.Spinlocks[addr]
	if !ok {
		sp = &Spin{}
		ks.Spinlocks[addr] = sp
	}
	return sp
}

func ndisAllocateSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	lockAt(Of(s), addr).Inited = true
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisFreeSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if sp, ok := ks.Spinlocks[addr]; ok && sp.Held {
		return nil, k.verifierBug(s, BugCheckSpinlockNotOwned,
			"NdisFreeSpinLock of held lock %#x", addr)
	}
	delete(ks.Spinlocks, addr)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisAcquireSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	sp := lockAt(ks, addr)
	if sp.Held {
		// Single-CPU model: re-acquiring a held spinlock never returns.
		return nil, vm.Faultf("deadlock", s.PC,
			"NdisAcquireSpinLock self-deadlock on lock %#x", addr)
	}
	sp.Held = true
	sp.DprOwned = false
	sp.OldIrql = ks.IRQL
	ks.IRQL = DispatchLevel
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisReleaseSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	sp, ok := ks.Spinlocks[addr]
	if !ok || !sp.Held {
		return nil, k.verifierBug(s, BugCheckSpinlockNotOwned,
			"NdisReleaseSpinLock of lock %#x that is not held", addr)
	}
	if sp.DprOwned {
		// Acquired with NdisDprAcquireSpinLock: releasing with the non-Dpr
		// variant restores a stale saved IRQL — specifically prohibited by
		// the documentation and the Intel Pro/100 bug of Table 2.
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"NdisReleaseSpinLock used for lock %#x acquired with NdisDprAcquireSpinLock (IRQL corruption in DPC)", addr)
	}
	if ks.IRQL != DispatchLevel {
		// Releasing while the IRQL is not DISPATCH means some other lock's
		// release already lowered it: an out-of-order release sequence.
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"NdisReleaseSpinLock of lock %#x at %s (out-of-order spinlock release)", addr, IrqlName(ks.IRQL))
	}
	sp.Held = false
	ks.IRQL = sp.OldIrql
	if ks.InDpc && ks.IRQL < DispatchLevel {
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"spinlock release lowered IRQL to %s inside a DPC", IrqlName(ks.IRQL))
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisDprAcquireSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if ks.IRQL < DispatchLevel {
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"NdisDprAcquireSpinLock called at %s (requires DISPATCH_LEVEL)", IrqlName(ks.IRQL))
	}
	sp := lockAt(ks, addr)
	if sp.Held {
		return nil, vm.Faultf("deadlock", s.PC,
			"NdisDprAcquireSpinLock self-deadlock on lock %#x", addr)
	}
	sp.Held = true
	sp.DprOwned = true
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisDprReleaseSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	sp, ok := ks.Spinlocks[addr]
	if !ok || !sp.Held {
		return nil, k.verifierBug(s, BugCheckSpinlockNotOwned,
			"NdisDprReleaseSpinLock of lock %#x that is not held", addr)
	}
	if !sp.DprOwned {
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"NdisDprReleaseSpinLock used for lock %#x acquired with NdisAcquireSpinLock", addr)
	}
	sp.Held = false
	sp.DprOwned = false
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMInitializeTimer(timerPtr, adapter, funcPC, ctx)
func ndisMInitializeTimer(k *Kernel, s *vm.State) ([]*vm.State, error) {
	timerPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	funcPC, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	ctx, err := k.ArgConcrete(s, 3)
	if err != nil {
		return nil, err
	}
	Of(s).Timers[timerPtr] = &Timer{Initialized: true, FuncPC: funcPC, Ctx: ctx}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMSetTimer(timerPtr, milliseconds)
func ndisMSetTimer(k *Kernel, s *vm.State) ([]*vm.State, error) {
	timerPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	t, ok := ks.Timers[timerPtr]
	if !ok || !t.Initialized {
		// The RTL8029 race of Table 2: an interrupt arriving before
		// NdisMInitializeTimer hands the kernel an uninitialized timer.
		return nil, k.verifierBug(s, BugCheckTimerNotInitialized,
			"NdisMSetTimer on uninitialized timer descriptor %#x", timerPtr)
	}
	t.Queued = true
	ks.PendingDPCs = append(ks.PendingDPCs, DPC{FuncPC: t.FuncPC, Ctx: t.Ctx, Label: "timer"})
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisMCancelTimer(k *Kernel, s *vm.State) ([]*vm.State, error) {
	timerPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	canceledPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	was := uint32(0)
	if t, ok := ks.Timers[timerPtr]; ok && t.Queued {
		t.Queued = false
		was = 1
	}
	if canceledPtr != 0 {
		k.writeU32(s, canceledPtr, was)
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMRegisterInterrupt(intrPtr, adapter, vector, level, shared, mode)
func ndisMRegisterInterrupt(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ks := Of(s)
	if ks.Miniport == nil || ks.Miniport.ISRPC == 0 {
		return nil, k.verifierBug(s, BugCheckDriverFault,
			"NdisMRegisterInterrupt before miniport registration")
	}
	ks.ISRRegistered = true
	ks.ISRPC = ks.Miniport.ISRPC
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisMDeregisterInterrupt(k *Kernel, s *vm.State) ([]*vm.State, error) {
	Of(s).ISRRegistered = false
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMMapIoSpace(vaPtr, adapter, physAddr, length) -> status
func ndisMMapIoSpace(k *Kernel, s *vm.State) ([]*vm.State, error) {
	vaPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	k.writeU32(s, vaPtr, isa.MMIOBase)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMRegisterIoPortRange(portVaPtr, adapter, start, count) -> status
func ndisMRegisterIoPortRange(k *Kernel, s *vm.State) ([]*vm.State, error) {
	portVaPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	start, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	k.writeU32(s, portVaPtr, start)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisAllocatePacketPool(statusPtr, poolPtr, descriptors, rsvdLen)
func ndisAllocatePacketPool(k *Kernel, s *vm.State) ([]*vm.State, error) {
	statusPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	poolPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	n, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	h := ks.NewHandle()
	ks.PacketPools[h] = &Pool{Capacity: n}
	k.writeU32(s, statusPtr, StatusSuccess)
	k.writeU32(s, poolPtr, h)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisFreePacketPool(k *Kernel, s *vm.State) ([]*vm.State, error) {
	h, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	pool, ok := ks.PacketPools[h]
	if !ok {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisFreePacketPool of invalid pool %#x", h)
	}
	if pool.Live > 0 {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisFreePacketPool with %d packets outstanding", pool.Live)
	}
	delete(ks.PacketPools, h)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisAllocatePacket(statusPtr, pktPtr, poolHandle)
func ndisAllocatePacket(k *Kernel, s *vm.State) ([]*vm.State, error) {
	statusPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	pktPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	h, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	pool, ok := ks.PacketPools[h]
	if !ok {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisAllocatePacket from invalid pool %#x", h)
	}
	if uint32(pool.Live) >= pool.Capacity {
		k.writeU32(s, statusPtr, StatusResources)
		k.writeU32(s, pktPtr, 0)
		k.SetRet(s, StatusResources)
		return nil, nil
	}
	addr, aerr := ks.HeapAlloc(64, "packet", "packet", s.ICount, s.PC)
	if aerr != nil {
		return nil, vm.Faultf("engine", s.PC, "%v", aerr)
	}
	// Packets are tracked separately from pool allocations.
	delete(ks.Allocs, addr)
	pool.Live++
	ks.Packets[addr] = PacketInfo{Pool: h, PC: s.PC}
	k.writeU32(s, statusPtr, StatusSuccess)
	k.writeU32(s, pktPtr, addr)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisFreePacket(k *Kernel, s *vm.State) ([]*vm.State, error) {
	pkt, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	pi, ok := ks.Packets[pkt]
	if !ok {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisFreePacket of invalid packet %#x", pkt)
	}
	delete(ks.Packets, pkt)
	if pool, ok := ks.PacketPools[pi.Pool]; ok {
		pool.Live--
	}
	ks.Revoke(pkt, pkt+64)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisAllocateBufferPool(statusPtr, poolPtr, descriptors)
func ndisAllocateBufferPool(k *Kernel, s *vm.State) ([]*vm.State, error) {
	statusPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	poolPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	n, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	h := ks.NewHandle()
	ks.BufferPools[h] = &Pool{Capacity: n}
	k.writeU32(s, statusPtr, StatusSuccess)
	k.writeU32(s, poolPtr, h)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisFreeBufferPool(k *Kernel, s *vm.State) ([]*vm.State, error) {
	h, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	pool, ok := ks.BufferPools[h]
	if !ok {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisFreeBufferPool of invalid pool %#x", h)
	}
	if pool.Live > 0 {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisFreeBufferPool with %d buffers outstanding", pool.Live)
	}
	delete(ks.BufferPools, h)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisAllocateBuffer(statusPtr, bufPtr, poolHandle, vaddr, length)
func ndisAllocateBuffer(k *Kernel, s *vm.State) ([]*vm.State, error) {
	statusPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	bufPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	h, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	pool, ok := ks.BufferPools[h]
	if !ok {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisAllocateBuffer from invalid pool %#x", h)
	}
	addr, aerr := ks.HeapAlloc(32, "buffer", "buffer", s.ICount, s.PC)
	if aerr != nil {
		return nil, vm.Faultf("engine", s.PC, "%v", aerr)
	}
	pool.Live++
	k.writeU32(s, statusPtr, StatusSuccess)
	k.writeU32(s, bufPtr, addr)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisFreeBuffer(k *Kernel, s *vm.State) ([]*vm.State, error) {
	buf, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	a, ok := ks.Allocs[buf]
	if !ok || a.Kind != "buffer" {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisFreeBuffer of invalid buffer %#x", buf)
	}
	ks.HeapFree(buf)
	for _, pool := range ks.BufferPools {
		if pool.Live > 0 {
			pool.Live--
			break
		}
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMAllocateSharedMemory(adapter, length, cached, vaPtr, paPtr)
func ndisMAllocateSharedMemory(k *Kernel, s *vm.State) ([]*vm.State, error) {
	length, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	vaPtr, err := k.ArgConcrete(s, 3)
	if err != nil {
		return nil, err
	}
	paPtr, err := k.ArgConcrete(s, 4)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	addr, aerr := ks.HeapAlloc(length, "dma", "shared", s.ICount, s.PC)
	if aerr != nil {
		k.writeU32(s, vaPtr, 0)
		k.writeU32(s, paPtr, 0)
		k.SetRet(s, StatusResources)
		return nil, nil
	}
	k.writeU32(s, vaPtr, addr)
	k.writeU32(s, paPtr, addr) // identity "physical" mapping
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMFreeSharedMemory(adapter, length, cached, va, pa)
func ndisMFreeSharedMemory(k *Kernel, s *vm.State) ([]*vm.State, error) {
	va, err := k.ArgConcrete(s, 3)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if !ks.HeapFree(va) {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"NdisMFreeSharedMemory of non-allocated pointer %#x", va)
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisReadNetworkAddress(statusPtr, addrPtrPtr, lenPtr, handle)
func ndisReadNetworkAddress(k *Kernel, s *vm.State) ([]*vm.State, error) {
	statusPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	addrPtrPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	lenPtr, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	block, aerr := ks.HeapAlloc(8, "netaddr", "param", s.ICount, s.PC)
	if aerr != nil {
		return nil, vm.Faultf("engine", s.PC, "%v", aerr)
	}
	delete(ks.Allocs, block)
	s.Mem.WriteBytes(block, []byte{0x02, 0x11, 0x22, 0x33, 0x44, 0x55, 0, 0})
	k.writeU32(s, statusPtr, StatusSuccess)
	k.writeU32(s, addrPtrPtr, block)
	k.writeU32(s, lenPtr, 6)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisZeroMemory(dst, length)
func ndisZeroMemory(k *Kernel, s *vm.State) ([]*vm.State, error) {
	dst, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	length, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	if length > 1<<20 {
		return nil, k.verifierBug(s, BugCheckDriverFault, "NdisZeroMemory of %d bytes", length)
	}
	for i := uint32(0); i < length; i++ {
		s.Mem.StoreByte(dst+i, expr.Const(0))
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// NdisMoveMemory(dst, src, length) — the kernel validates both ranges
// against the driver's grants, Driver Verifier style.
func ndisMoveMemory(k *Kernel, s *vm.State) ([]*vm.State, error) {
	dst, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	src, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	length, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	if length > 1<<20 {
		return nil, k.verifierBug(s, BugCheckDriverFault, "NdisMoveMemory of %d bytes", length)
	}
	for i := uint32(0); i < length; i++ {
		s.Mem.StoreByte(dst+i, s.Mem.LoadByte(src+i))
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisGetCurrentSystemTime(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	k.writeU32(s, ptr, uint32(s.ICount))
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func ndisMSleep(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ks := Of(s)
	if ks.IRQL >= DispatchLevel {
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"NdisMSleep called at %s", IrqlName(ks.IRQL))
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}
