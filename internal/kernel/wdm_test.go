package kernel

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

func TestKeRaiseAndLowerIrql(t *testing.T) {
	k, s := harness(t, `
.import KeRaiseIrql
.import KeLowerIrql
.import KeGetCurrentIrql
.entry e
.text
e:
    push lr
    addi sp, sp, -4
    movi r0, 2             ; DISPATCH_LEVEL
    mov  r1, sp
    call KeRaiseIrql
    call KeGetCurrentIrql
    mov  r4, r0            ; should be 2
    movi r0, 0
    call KeLowerIrql
    call KeGetCurrentIrql
    mov  r5, r0            ; should be 0
    addi sp, sp, 4
    pop  lr
    ret
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	if v, _ := finals[0].RegConcrete(isa.R4); v != uint32(DispatchLevel) {
		t.Errorf("raised irql = %d", v)
	}
	if v, _ := finals[0].RegConcrete(isa.R5); v != uint32(PassiveLevel) {
		t.Errorf("lowered irql = %d", v)
	}
}

func TestKeRaiseIrqlDownwardIsBug(t *testing.T) {
	k, s := harness(t, `
.import KeRaiseIrql
.entry e
.text
e:
    push lr
    movi r0, 0
    movi r1, 0
    call KeRaiseIrql
    pop  lr
    ret
`)
	Of(s).IRQL = DispatchLevel
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "KeRaiseIrql") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestKeLowerIrqlUpwardIsBug(t *testing.T) {
	k, s := harness(t, `
.import KeLowerIrql
.entry e
.text
e:
    push lr
    movi r0, 5
    call KeLowerIrql
    pop  lr
    ret
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "KeLowerIrql") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestKeSpinLockPair(t *testing.T) {
	k, s := harness(t, `
.import KeInitializeSpinLock
.import KeAcquireSpinLock
.import KeReleaseSpinLock
.entry e
.text
e:
    push lr
    addi sp, sp, -4
    movi r0, lock
    call KeInitializeSpinLock
    movi r0, lock
    mov  r1, sp
    call KeAcquireSpinLock
    movi r0, lock
    ldw  r1, [sp+0]        ; restore the recorded old IRQL
    call KeReleaseSpinLock
    addi sp, sp, 4
    pop  lr
    ret
.data
lock: .word 0
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	ks := Of(finals[0])
	if ks.IRQL != PassiveLevel || len(ks.HeldSpinlocks()) != 0 {
		t.Errorf("post state: irql=%s held=%v", IrqlName(ks.IRQL), ks.HeldSpinlocks())
	}
}

func TestKeReleaseInDpcLoweringIsBug(t *testing.T) {
	k, s := harness(t, `
.import KeAcquireSpinLock
.import KeReleaseSpinLock
.entry e
.text
e:
    push lr
    addi sp, sp, -4
    movi r0, lock
    mov  r1, sp
    call KeAcquireSpinLock
    movi r0, lock
    movi r1, 0             ; PASSIVE in a DPC: prohibited
    call KeReleaseSpinLock
    addi sp, sp, 4
    pop  lr
    ret
.data
lock: .word 0
`)
	Of(s).IRQL = DispatchLevel
	Of(s).InDpc = true
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "DPC") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestAudioRegistrationFlow(t *testing.T) {
	k, s := harness(t, `
.import PcRegisterMiniport
.import PcNewInterruptSync
.import PcRegisterServiceRoutine
.entry e
.text
e:
    push lr
    addi sp, sp, -4
    movi r0, chars
    call PcRegisterMiniport
    mov  r0, sp
    movi r1, 0
    call PcNewInterruptSync
    ldw  r0, [sp+0]
    movi r1, isr
    movi r2, 0
    call PcRegisterServiceRoutine
    addi sp, sp, 4
    pop  lr
    movi r0, 0
    ret
init: ret
play: ret
stop: ret
isr:  ret
halt: ret
.data
chars: .word init, play, stop, isr, halt
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	ks := Of(finals[0])
	if ks.Audio == nil || ks.Audio.PlayPC == 0 {
		t.Fatal("audio chars not registered")
	}
	if !ks.ISRRegistered {
		t.Error("service routine not attached")
	}
	// The sync object lives in guest memory and is dereferenceable.
	for sync := range ks.IntrSyncs {
		if _, ok := ks.FindRegion(sync, 4); !ok {
			t.Errorf("sync object %#x not granted", sync)
		}
	}
}

func TestRegisterServiceRoutineOnBadSyncIsBug(t *testing.T) {
	k, s := harness(t, `
.import PcRegisterServiceRoutine
.entry e
.text
e:
    push lr
    movi r0, 0xDEAD
    movi r1, e
    movi r2, 0
    call PcRegisterServiceRoutine
    pop  lr
    ret
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "invalid interrupt sync") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestNdisMoveAndZeroMemory(t *testing.T) {
	k, s := harness(t, `
.import NdisMoveMemory
.import NdisZeroMemory
.entry e
.text
e:
    push lr
    movi r0, dstbuf
    movi r1, srcbuf
    movi r2, 8
    call NdisMoveMemory
    movi r4, dstbuf
    ldw  r4, [r4+0]        ; copied word
    movi r0, srcbuf
    movi r1, 8
    call NdisZeroMemory
    movi r5, srcbuf
    ldw  r5, [r5+0]        ; zeroed word
    pop  lr
    ret
.data
srcbuf: .word 0xDEADBEEF, 0x12345678
dstbuf: .word 0, 0
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	if v, _ := finals[0].RegConcrete(isa.R4); v != 0xDEADBEEF {
		t.Errorf("copy = %#x", v)
	}
	if v, _ := finals[0].RegConcrete(isa.R5); v != 0 {
		t.Errorf("zero = %#x", v)
	}
}

func TestReadConfigurationMissingKey(t *testing.T) {
	k, s := harness(t, `
.import NdisOpenConfiguration
.import NdisReadConfiguration
.import NdisCloseConfiguration
.entry e
.text
e:
    push lr
    addi sp, sp, -12
    mov  r0, sp
    addi r1, sp, 4
    call NdisOpenConfiguration
    mov  r0, sp
    addi r1, sp, 8
    ldw  r2, [sp+4]
    movi r3, name
    call NdisReadConfiguration
    mov  r4, r0            ; status: failure for a missing key
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 12
    pop  lr
    mov  r0, r4
    ret
.data
name: .asciz "NoSuchParameter"
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	if v, _ := finals[0].RegConcrete(isa.R0); v != StatusFailure {
		t.Errorf("status = %#x, want failure", v)
	}
}

func TestBufferPoolLifecycle(t *testing.T) {
	k, s := harness(t, `
.import NdisAllocateBufferPool
.import NdisAllocateBuffer
.import NdisFreeBuffer
.import NdisFreeBufferPool
.entry e
.text
e:
    push lr
    addi sp, sp, -12
    mov  r0, sp
    addi r1, sp, 4
    movi r2, 4
    call NdisAllocateBufferPool
    mov  r0, sp
    addi r1, sp, 8
    ldw  r2, [sp+4]
    movi r3, stage
    push r12
    movi r12, 64
    stw  [sp+0], r12
    call NdisAllocateBuffer
    pop  r12
    ldw  r0, [sp+8]
    call NdisFreeBuffer
    ldw  r0, [sp+4]
    call NdisFreeBufferPool
    addi sp, sp, 12
    pop  lr
    ret
.data
stage: .space 64
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	ks := Of(finals[0])
	if len(ks.BufferPools) != 0 || len(ks.LiveAllocs()) != 0 {
		t.Errorf("buffer state leaked: %v / %v", ks.BufferPools, ks.LiveAllocs())
	}
}

func TestInvokeSetsUpEntryState(t *testing.T) {
	k, s := harness(t, ".entry e\n.text\ne: ret\n")
	// harness already invoked; verify the conventions.
	if s.EntryName != "DriverEntry" {
		t.Errorf("entry name %q", s.EntryName)
	}
	if lr, _ := s.RegConcrete(isa.LR); lr != vm.ExitAddr {
		t.Errorf("lr = %#x", lr)
	}
	_ = k
}

func TestAPICallCounting(t *testing.T) {
	k, s := harness(t, `
.import NdisStallExecution
.entry e
.text
e:
    push lr
    call NdisStallExecution
    call NdisStallExecution
    pop  lr
    ret
`)
	drain(t, k, s)
	if k.APICallCount["NdisStallExecution"] != 2 {
		t.Errorf("count = %d", k.APICallCount["NdisStallExecution"])
	}
}
