package kernel

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/vm"
)

// RegionKind classifies a memory grant, mirroring §3.1.1's list of regions
// a driver may legally touch.
type RegionKind uint8

// Memory grant kinds.
const (
	RegionImage    RegionKind = iota // loadable sections of the driver binary
	RegionStack                      // current driver stack
	RegionKGlobals                   // kernel globals explicitly imported
	RegionAlloc                      // dynamically allocated pool memory
	RegionPacket                     // packet descriptors/buffers passed to the driver
	RegionShared                     // DMA shared memory
	RegionMMIO                       // mapped device registers
	RegionParam                      // kernel-owned parameter blocks passed to entry points
)

func (k RegionKind) String() string {
	switch k {
	case RegionImage:
		return "image"
	case RegionStack:
		return "stack"
	case RegionKGlobals:
		return "kglobals"
	case RegionAlloc:
		return "alloc"
	case RegionPacket:
		return "packet"
	case RegionShared:
		return "shared"
	case RegionMMIO:
		return "mmio"
	case RegionParam:
		return "param"
	default:
		return "region?"
	}
}

// Region is one granted address range [Lo, Hi).
type Region struct {
	Lo, Hi   uint32
	Kind     RegionKind
	Tag      string
	Writable bool
	Pageable bool // pageable memory: touching it at >= DispatchLevel is a bug
}

// Alloc records one live dynamic allocation.
type Alloc struct {
	Addr uint32
	Size uint32
	Tag  string
	Kind string // "pool", "shared", "packet", "buffer"
	Seq  uint64 // allocation time (instruction count)
	PC   uint32 // driver call site, for leak attribution
}

// Spin tracks one spinlock's concrete state.
type Spin struct {
	Held     bool
	OldIrql  uint8 // IRQL to restore on release
	DprOwned bool  // acquired with the Dpr (DISPATCH-level) variant
	Inited   bool
}

// Timer tracks an NDIS timer object.
type Timer struct {
	Initialized bool
	FuncPC      uint32
	Ctx         uint32
	Queued      bool
}

// Pool tracks a packet or buffer pool.
type Pool struct {
	Capacity uint32
	Live     int
	Freed    bool
}

// ConfigHandle records an open configuration handle and where it was
// opened (for leak attribution).
type ConfigHandle struct {
	Label string
	PC    uint32
}

// PacketInfo records a live packet's owning pool and allocation site.
type PacketInfo struct {
	Pool uint32
	PC   uint32
}

// DPC is a queued deferred procedure call the exerciser will dispatch at
// DispatchLevel.
type DPC struct {
	FuncPC uint32
	Ctx    uint32
	Label  string
	// Obj is the guest address of the backing KDPC object for DPCs queued
	// via KeInsertQueueDpc (0 for timer DPCs): dispatch clears its queued
	// flag so the driver may re-queue it.
	Obj uint32
}

// DpcObj tracks a driver-embedded KDPC object (KeInitializeDpc /
// KeInsertQueueDpc).
type DpcObj struct {
	Inited bool
	FuncPC uint32
	Ctx    uint32
	Queued bool
}

// MiniportChars is the entry-point table a network driver registers via
// NdisMRegisterMiniport (the driver's analogue of
// NDIS_MINIPORT_CHARACTERISTICS).
type MiniportChars struct {
	InitializePC uint32
	SendPC       uint32
	QueryInfoPC  uint32
	SetInfoPC    uint32
	HaltPC       uint32
	ISRPC        uint32
	HandleIntPC  uint32
}

// AudioChars is the audio driver's registration table (PortCls-flavoured).
type AudioChars struct {
	InitializePC uint32
	PlayPC       uint32
	StopPC       uint32
	ISRPC        uint32
	HaltPC       uint32
}

// StorageChars is the storage miniport's registration table: data-path
// entries plus the IRP_MJ_PNP / IRP_MJ_POWER dispatch handlers the
// scenario-graph workload drives (suspend/resume, surprise removal,
// cancellation).
type StorageChars struct {
	InitializePC uint32
	ReadPC       uint32
	WritePC      uint32
	CancelPC     uint32
	PnpPC        uint32
	PowerPC      uint32
	ISRPC        uint32
	HaltPC       uint32
}

// KState is the concrete kernel state attached to one execution state. It
// forks with the machine state so each explored path sees its own kernel
// world — handles, IRQL, lock ownership, live allocations.
type KState struct {
	IRQL uint8

	// IRQLStack saves pre-interrupt IRQLs across injected interrupts.
	IRQLStack []uint8

	Regions []Region

	NextHeap   uint32
	NextHandle uint32

	Allocs        map[uint32]*Alloc
	Spinlocks     map[uint32]*Spin
	ConfigHandles map[uint32]ConfigHandle
	Timers        map[uint32]*Timer
	PacketPools   map[uint32]*Pool
	BufferPools   map[uint32]*Pool
	Packets       map[uint32]PacketInfo

	Registry map[string]uint32

	Miniport *MiniportChars
	Audio    *AudioChars
	Storage  *StorageChars

	ISRRegistered bool
	ISRPC         uint32
	IntrSyncs     map[uint32]bool // PcNewInterruptSync objects

	// Dpcs tracks driver-embedded KDPC objects by guest address.
	Dpcs map[uint32]*DpcObj

	PendingDPCs []DPC

	// PowerState is the device power state last set via PoSetPowerState
	// (0 = never set; PowerDeviceD0/D3 afterwards).
	PowerState uint32

	// Removed is set when the workload surprise-removes the device: from
	// then on all hardware reads return ~0 (internal/hw honours it).
	Removed bool

	Crashed   bool
	CrashCode uint32
	CrashMsg  string

	// InDpc is set while the exerciser dispatches a DPC or timer callback;
	// DPC context forbids lowering the IRQL below DISPATCH_LEVEL.
	InDpc bool

	// Failure counters consumed by annotations to fork bounded
	// allocation-failure alternatives.
	AllocFailForks int
}

// NewKState builds the boot-time kernel state for a freshly loaded driver
// image: image and stack grants, kernel globals, and registry defaults.
func NewKState() *KState {
	ks := &KState{
		NextHeap:      isa.HeapBase,
		NextHandle:    0x8000_0001,
		Allocs:        make(map[uint32]*Alloc),
		Spinlocks:     make(map[uint32]*Spin),
		ConfigHandles: make(map[uint32]ConfigHandle),
		Timers:        make(map[uint32]*Timer),
		PacketPools:   make(map[uint32]*Pool),
		BufferPools:   make(map[uint32]*Pool),
		Packets:       make(map[uint32]PacketInfo),
		Registry:      make(map[string]uint32),
		IntrSyncs:     make(map[uint32]bool),
		Dpcs:          make(map[uint32]*DpcObj),
	}
	ks.Grant(Region{Lo: isa.KGlobals, Hi: isa.KGlobals + isa.KGlobalsSz, Kind: RegionKGlobals, Writable: false, Tag: "kernel globals"})
	ks.Grant(Region{Lo: isa.StackBase - isa.StackSize, Hi: isa.StackBase, Kind: RegionStack, Writable: true, Tag: "driver stack"})
	return ks
}

// Fork deep-copies the kernel state (vm.Forkable).
func (ks *KState) Fork() vm.Forkable {
	n := &KState{
		IRQL:           ks.IRQL,
		IRQLStack:      append([]uint8(nil), ks.IRQLStack...),
		Regions:        append([]Region(nil), ks.Regions...),
		NextHeap:       ks.NextHeap,
		NextHandle:     ks.NextHandle,
		Allocs:         make(map[uint32]*Alloc, len(ks.Allocs)),
		Spinlocks:      make(map[uint32]*Spin, len(ks.Spinlocks)),
		ConfigHandles:  make(map[uint32]ConfigHandle, len(ks.ConfigHandles)),
		Timers:         make(map[uint32]*Timer, len(ks.Timers)),
		PacketPools:    make(map[uint32]*Pool, len(ks.PacketPools)),
		BufferPools:    make(map[uint32]*Pool, len(ks.BufferPools)),
		Packets:        make(map[uint32]PacketInfo, len(ks.Packets)),
		Registry:       make(map[string]uint32, len(ks.Registry)),
		IntrSyncs:      make(map[uint32]bool, len(ks.IntrSyncs)),
		Dpcs:           make(map[uint32]*DpcObj, len(ks.Dpcs)),
		ISRRegistered:  ks.ISRRegistered,
		ISRPC:          ks.ISRPC,
		PendingDPCs:    append([]DPC(nil), ks.PendingDPCs...),
		Crashed:        ks.Crashed,
		CrashCode:      ks.CrashCode,
		CrashMsg:       ks.CrashMsg,
		InDpc:          ks.InDpc,
		PowerState:     ks.PowerState,
		Removed:        ks.Removed,
		AllocFailForks: ks.AllocFailForks,
	}
	for k, v := range ks.Allocs {
		c := *v
		n.Allocs[k] = &c
	}
	for k, v := range ks.Spinlocks {
		c := *v
		n.Spinlocks[k] = &c
	}
	for k, v := range ks.ConfigHandles {
		n.ConfigHandles[k] = v
	}
	for k, v := range ks.Timers {
		c := *v
		n.Timers[k] = &c
	}
	for k, v := range ks.PacketPools {
		c := *v
		n.PacketPools[k] = &c
	}
	for k, v := range ks.BufferPools {
		c := *v
		n.BufferPools[k] = &c
	}
	for k, v := range ks.Packets {
		n.Packets[k] = v
	}
	for k, v := range ks.Registry {
		n.Registry[k] = v
	}
	for k, v := range ks.IntrSyncs {
		n.IntrSyncs[k] = v
	}
	for k, v := range ks.Dpcs {
		c := *v
		n.Dpcs[k] = &c
	}
	if ks.Miniport != nil {
		c := *ks.Miniport
		n.Miniport = &c
	}
	if ks.Audio != nil {
		c := *ks.Audio
		n.Audio = &c
	}
	if ks.Storage != nil {
		c := *ks.Storage
		n.Storage = &c
	}
	return n
}

// TakeDPC pops the head of the pending-DPC queue. For DPCs queued via
// KeInsertQueueDpc it clears the backing object's queued flag so the
// driver may re-queue it; timer DPCs (Obj == 0) are unaffected. All
// dispatch sites (barriered, pipelined, fuzz) must pop through here.
func (ks *KState) TakeDPC() DPC {
	d := ks.PendingDPCs[0]
	ks.PendingDPCs = ks.PendingDPCs[1:]
	if d.Obj != 0 {
		if o := ks.Dpcs[d.Obj]; o != nil {
			o.Queued = false
		}
	}
	return d
}

// Of extracts the kernel state attached to a vm state.
func Of(s *vm.State) *KState { return s.Kernel.(*KState) }

// Grant adds a memory grant.
func (ks *KState) Grant(r Region) { ks.Regions = append(ks.Regions, r) }

// Revoke removes grants exactly matching [lo,hi). It reports whether a
// grant was found.
func (ks *KState) Revoke(lo, hi uint32) bool {
	for i, r := range ks.Regions {
		if r.Lo == lo && r.Hi == hi {
			ks.Regions = append(ks.Regions[:i], ks.Regions[i+1:]...)
			return true
		}
	}
	return false
}

// FindRegion returns the grant containing [addr, addr+size), if any.
func (ks *KState) FindRegion(addr, size uint32) (Region, bool) {
	for _, r := range ks.Regions {
		if addr >= r.Lo && addr+size <= r.Hi {
			return r, true
		}
	}
	return Region{}, false
}

// HeapAlloc carves size bytes out of the kernel heap window, records the
// allocation (attributed to driver call site pc), and grants access.
func (ks *KState) HeapAlloc(size uint32, tag, kind string, seq uint64, pc uint32) (uint32, error) {
	sz := (size + 15) &^ 15
	if ks.NextHeap+sz > isa.HeapLimit {
		return 0, fmt.Errorf("kernel heap exhausted")
	}
	addr := ks.NextHeap
	ks.NextHeap += sz
	ks.Allocs[addr] = &Alloc{Addr: addr, Size: size, Tag: tag, Kind: kind, Seq: seq, PC: pc}
	ks.Grant(Region{Lo: addr, Hi: addr + size, Kind: RegionAlloc, Writable: true, Tag: tag})
	return addr, nil
}

// HeapFree releases an allocation; it reports false for an address that is
// not a live allocation (double free / bad pointer).
func (ks *KState) HeapFree(addr uint32) bool {
	a, ok := ks.Allocs[addr]
	if !ok {
		return false
	}
	delete(ks.Allocs, addr)
	ks.Revoke(addr, addr+a.Size)
	return true
}

// NewHandle mints an opaque kernel handle.
func (ks *KState) NewHandle() uint32 {
	h := ks.NextHandle
	ks.NextHandle++
	return h
}

// LiveAllocs returns allocations that were never freed, ordered by
// allocation time, for the resource leak checker.
func (ks *KState) LiveAllocs() []*Alloc {
	var out []*Alloc
	for _, a := range ks.Allocs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// LivePackets counts packets never freed back to their pool.
func (ks *KState) LivePackets() int { return len(ks.Packets) }

// OpenConfigHandles returns configuration handles never closed, ordered by
// open site.
func (ks *KState) OpenConfigHandles() []ConfigHandle {
	var out []ConfigHandle
	for _, h := range ks.ConfigHandles {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}

// HeldSpinlocks returns addresses of spinlocks still held, sorted.
func (ks *KState) HeldSpinlocks() []uint32 {
	var out []uint32
	for addr, sp := range ks.Spinlocks {
		if sp.Held {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LivePacketList returns live packets ordered by allocation site.
func (ks *KState) LivePacketList() []PacketInfo {
	var out []PacketInfo
	for _, p := range ks.Packets {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}
