package kernel

import (
	"repro/internal/isa"
	"repro/internal/vm"
)

// registerWdmAPI installs the WDM/PortCls-flavoured API used by the sound
// card drivers (the paper's Ensoniq AudioPCI and Intel AC97 corpus) plus the
// Ex/Ke primitives shared by all driver classes.
func registerWdmAPI(k *Kernel) {
	k.Register("ExAllocatePoolWithTag", exAllocatePoolWithTag)
	k.Register("ExFreePoolWithTag", exFreePoolWithTag)
	k.Register("KeInitializeSpinLock", keInitializeSpinLock)
	k.Register("KeAcquireSpinLock", keAcquireSpinLock)
	k.Register("KeReleaseSpinLock", keReleaseSpinLock)
	k.Register("KeGetCurrentIrql", keGetCurrentIrql)
	k.Register("KeRaiseIrql", keRaiseIrql)
	k.Register("KeLowerIrql", keLowerIrql)
	k.Register("KeBugCheckEx", keBugCheckEx)
	k.Register("KeStallExecutionProcessor", nop)
	k.Register("PcRegisterMiniport", pcRegisterMiniport)
	k.Register("PcNewInterruptSync", pcNewInterruptSync)
	k.Register("PcRegisterServiceRoutine", pcRegisterServiceRoutine)
	k.Register("IoWriteErrorLogEntry", nop)
	k.Register("StorRegisterMiniport", storRegisterMiniport)
	k.Register("IoConnectInterrupt", ioConnectInterrupt)
	k.Register("KeInitializeDpc", keInitializeDpc)
	k.Register("KeInsertQueueDpc", keInsertQueueDpc)
	k.Register("PoSetPowerState", poSetPowerState)
	k.Register("MmMapIoSpace", mmMapIoSpace)
}

// PoolType argument values for ExAllocatePoolWithTag.
const (
	NonPagedPool uint32 = 0
	PagedPool    uint32 = 1
)

// ExAllocatePoolWithTag(poolType, size, tag) -> ptr (NULL on failure)
func exAllocatePoolWithTag(k *Kernel, s *vm.State) ([]*vm.State, error) {
	poolType, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	size, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if poolType == PagedPool && ks.IRQL >= DispatchLevel {
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"paged pool allocation at %s", IrqlName(ks.IRQL))
	}
	addr, aerr := ks.HeapAlloc(size, "expool", "pool", s.ICount, s.PC)
	if aerr != nil {
		k.SetRet(s, 0)
		return nil, nil
	}
	if poolType == PagedPool {
		// Mark the grant pageable: touching it at elevated IRQL is a bug
		// the access checker catches.
		for i := range ks.Regions {
			if ks.Regions[i].Lo == addr {
				ks.Regions[i].Pageable = true
			}
		}
	}
	k.SetRet(s, addr)
	return nil, nil
}

// ExFreePoolWithTag(ptr, tag)
func exFreePoolWithTag(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	if !Of(s).HeapFree(ptr) {
		return nil, k.verifierBug(s, BugCheckBadPoolCaller,
			"ExFreePoolWithTag of non-allocated pointer %#x", ptr)
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func keInitializeSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	lockAt(Of(s), addr).Inited = true
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// KeAcquireSpinLock(lockPtr, oldIrqlPtr)
func keAcquireSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	oldIrqlPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	sp := lockAt(ks, addr)
	if sp.Held {
		return nil, vm.Faultf("deadlock", s.PC,
			"KeAcquireSpinLock self-deadlock on lock %#x", addr)
	}
	sp.Held = true
	sp.DprOwned = false
	sp.OldIrql = ks.IRQL
	if oldIrqlPtr != 0 {
		k.writeU32(s, oldIrqlPtr, uint32(ks.IRQL))
	}
	ks.IRQL = DispatchLevel
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// KeReleaseSpinLock(lockPtr, newIrql)
func keReleaseSpinLock(k *Kernel, s *vm.State) ([]*vm.State, error) {
	addr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	newIrql, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	sp, ok := ks.Spinlocks[addr]
	if !ok || !sp.Held {
		return nil, k.verifierBug(s, BugCheckSpinlockNotOwned,
			"KeReleaseSpinLock of lock %#x that is not held", addr)
	}
	sp.Held = false
	ks.IRQL = uint8(newIrql)
	if ks.InDpc && ks.IRQL < DispatchLevel {
		// The Intel Pro/100 bug class: lowering IRQL below DISPATCH inside
		// a DPC corrupts the dispatcher (kernel hang or panic).
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"KeReleaseSpinLock in DPC lowered IRQL to %s", IrqlName(ks.IRQL))
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

func keGetCurrentIrql(k *Kernel, s *vm.State) ([]*vm.State, error) {
	k.SetRet(s, uint32(Of(s).IRQL))
	return nil, nil
}

// KeRaiseIrql(newIrql, oldIrqlPtr)
func keRaiseIrql(k *Kernel, s *vm.State) ([]*vm.State, error) {
	newIrql, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	oldPtr, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if uint8(newIrql) < ks.IRQL {
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"KeRaiseIrql to %s below current %s", IrqlName(uint8(newIrql)), IrqlName(ks.IRQL))
	}
	if oldPtr != 0 {
		k.writeU32(s, oldPtr, uint32(ks.IRQL))
	}
	ks.IRQL = uint8(newIrql)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// KeLowerIrql(newIrql)
func keLowerIrql(k *Kernel, s *vm.State) ([]*vm.State, error) {
	newIrql, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if uint8(newIrql) > ks.IRQL {
		return nil, k.verifierBug(s, BugCheckIrqlNotLessOrEqual,
			"KeLowerIrql to %s above current %s", IrqlName(uint8(newIrql)), IrqlName(ks.IRQL))
	}
	ks.IRQL = uint8(newIrql)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// KeBugCheckEx(code, p1, p2, p3)
func keBugCheckEx(k *Kernel, s *vm.State) ([]*vm.State, error) {
	code, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	return nil, k.BugCheck(s, code, "driver-initiated bug check")
}

// PcRegisterMiniport(charsPtr) reads { Initialize, Play, Stop, ISR, Halt }.
func pcRegisterMiniport(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	var words [5]uint32
	for i := range words {
		words[i], err = k.readU32(s, ptr+uint32(i*4))
		if err != nil {
			return nil, err
		}
	}
	Of(s).Audio = &AudioChars{
		InitializePC: words[0], PlayPC: words[1], StopPC: words[2],
		ISRPC: words[3], HaltPC: words[4],
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// PcNewInterruptSync(syncPtrPtr, adapter) -> status. The stock annotation
// forks the failure alternative (status != success, *syncPtrPtr == NULL) —
// the Ensoniq AudioPCI crash of Table 2 lives on that path.
func pcNewInterruptSync(k *Kernel, s *vm.State) ([]*vm.State, error) {
	syncPtrPtr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	// The sync object lives in guest memory so the driver can embed and
	// dereference it (and so a NULL alternative dereferences the null
	// page, as the Ensoniq AudioPCI bug of Table 2 does).
	addr, aerr := ks.HeapAlloc(16, "intrsync", "param", s.ICount, s.PC)
	if aerr != nil {
		k.writeU32(s, syncPtrPtr, 0)
		k.SetRet(s, StatusFailure)
		return nil, nil
	}
	delete(ks.Allocs, addr) // kernel-owned object, not driver-leakable
	ks.IntrSyncs[addr] = true
	k.writeU32(s, syncPtrPtr, addr)
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// StorRegisterMiniport(charsPtr) reads the storage miniport's entry table
// { Initialize, Read, Write, CancelIo, Pnp, Power, ISR, Halt } — the
// storage analogue of NdisMRegisterMiniport, including the PnP/power
// dispatch handlers the scenario-graph workload exercises.
func storRegisterMiniport(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	var words [8]uint32
	for i := range words {
		words[i], err = k.readU32(s, ptr+uint32(i*4))
		if err != nil {
			return nil, err
		}
	}
	Of(s).Storage = &StorageChars{
		InitializePC: words[0], ReadPC: words[1], WritePC: words[2],
		CancelPC: words[3], PnpPC: words[4], PowerPC: words[5],
		ISRPC: words[6], HaltPC: words[7],
	}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// IoConnectInterrupt(isrPC, ctx) attaches the ISR to the device interrupt:
// from here on symbolic interrupts may be injected.
func ioConnectInterrupt(k *Kernel, s *vm.State) ([]*vm.State, error) {
	isrPC, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	ks.ISRRegistered = true
	ks.ISRPC = isrPC
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// KeInitializeDpc(dpcPtr, funcPC, ctx) initializes a driver-embedded KDPC
// object.
func keInitializeDpc(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	funcPC, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	ctx, err := k.ArgConcrete(s, 2)
	if err != nil {
		return nil, err
	}
	Of(s).Dpcs[ptr] = &DpcObj{Inited: true, FuncPC: funcPC, Ctx: ctx}
	k.SetRet(s, StatusSuccess)
	return nil, nil
}

// KeInsertQueueDpc(dpcPtr) -> TRUE if newly queued, FALSE if already
// queued. Queuing an uninitialized DPC is a verifier bug (the KDPC-flavour
// of BugCheckTimerNotInitialized).
func keInsertQueueDpc(k *Kernel, s *vm.State) ([]*vm.State, error) {
	ptr, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	o, ok := ks.Dpcs[ptr]
	if !ok || !o.Inited {
		return nil, k.verifierBug(s, BugCheckTimerNotInitialized,
			"KeInsertQueueDpc of uninitialized DPC object %#x", ptr)
	}
	if o.Queued {
		k.SetRet(s, 0)
		return nil, nil
	}
	o.Queued = true
	ks.PendingDPCs = append(ks.PendingDPCs, DPC{FuncPC: o.FuncPC, Ctx: o.Ctx, Label: "kdpc", Obj: ptr})
	k.SetRet(s, 1)
	return nil, nil
}

// PoSetPowerState(state) records the device power state the driver
// reported (PowerDeviceD0/D3); the workload's Suspend/Resume nodes read it
// back for edge decisions.
func poSetPowerState(k *Kernel, s *vm.State) ([]*vm.State, error) {
	state, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	old := ks.PowerState
	ks.PowerState = state
	k.SetRet(s, old)
	return nil, nil
}

// MmMapIoSpace(physAddr, length) -> virtual base of the device's register
// window (the machine routes loads/stores there to the device hooks).
func mmMapIoSpace(k *Kernel, s *vm.State) ([]*vm.State, error) {
	if _, err := k.ArgConcrete(s, 0); err != nil {
		return nil, err
	}
	k.SetRet(s, isa.MMIOBase)
	return nil, nil
}

// PcRegisterServiceRoutine(sync, isrPC, ctx) attaches the ISR to the
// interrupt: from here on symbolic interrupts may be injected.
func pcRegisterServiceRoutine(k *Kernel, s *vm.State) ([]*vm.State, error) {
	sync, err := k.ArgConcrete(s, 0)
	if err != nil {
		return nil, err
	}
	isrPC, err := k.ArgConcrete(s, 1)
	if err != nil {
		return nil, err
	}
	ks := Of(s)
	if !ks.IntrSyncs[sync] {
		return nil, k.verifierBug(s, BugCheckDriverFault,
			"PcRegisterServiceRoutine on invalid interrupt sync %#x", sync)
	}
	ks.ISRRegistered = true
	ks.ISRPC = isrPC
	k.SetRet(s, StatusSuccess)
	return nil, nil
}
