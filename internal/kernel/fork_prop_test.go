package kernel

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// fingerprint renders every mutable field of a KState — including the
// contents behind pointer-valued map entries — into one canonical string,
// so a snapshot-then-fork aliasing bug in any field shows up as a
// fingerprint change of the parent after the child is mutated.
func fingerprint(ks *KState) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "irql=%d stack=%v heap=%#x handle=%#x isr=%v/%#x dpc=%v crash=%v/%#x/%q indpc=%v aff=%d pow=%d rm=%v\n",
		ks.IRQL, ks.IRQLStack, ks.NextHeap, ks.NextHandle, ks.ISRRegistered, ks.ISRPC,
		ks.PendingDPCs, ks.Crashed, ks.CrashCode, ks.CrashMsg, ks.InDpc, ks.AllocFailForks,
		ks.PowerState, ks.Removed)
	for _, r := range ks.Regions {
		fmt.Fprintf(&sb, "region %+v\n", r)
	}
	var lines []string
	for k, v := range ks.Allocs {
		lines = append(lines, fmt.Sprintf("alloc %#x=%+v", k, *v))
	}
	for k, v := range ks.Spinlocks {
		lines = append(lines, fmt.Sprintf("spin %#x=%+v", k, *v))
	}
	for k, v := range ks.ConfigHandles {
		lines = append(lines, fmt.Sprintf("cfg %#x=%+v", k, v))
	}
	for k, v := range ks.Timers {
		lines = append(lines, fmt.Sprintf("timer %#x=%+v", k, *v))
	}
	for k, v := range ks.PacketPools {
		lines = append(lines, fmt.Sprintf("ppool %#x=%+v", k, *v))
	}
	for k, v := range ks.BufferPools {
		lines = append(lines, fmt.Sprintf("bpool %#x=%+v", k, *v))
	}
	for k, v := range ks.Packets {
		lines = append(lines, fmt.Sprintf("pkt %#x=%+v", k, v))
	}
	for k, v := range ks.Registry {
		lines = append(lines, fmt.Sprintf("reg %s=%d", k, v))
	}
	for k, v := range ks.IntrSyncs {
		lines = append(lines, fmt.Sprintf("isync %#x=%v", k, v))
	}
	for k, v := range ks.Dpcs {
		lines = append(lines, fmt.Sprintf("dpcobj %#x=%+v", k, *v))
	}
	sort.Strings(lines)
	sb.WriteString(strings.Join(lines, "\n"))
	if ks.Miniport != nil {
		fmt.Fprintf(&sb, "\nminiport %+v", *ks.Miniport)
	}
	if ks.Audio != nil {
		fmt.Fprintf(&sb, "\naudio %+v", *ks.Audio)
	}
	if ks.Storage != nil {
		fmt.Fprintf(&sb, "\nstorage %+v", *ks.Storage)
	}
	return sb.String()
}

// populate fills every KState structure with data so the aliasing check
// covers each field, nested pointers included.
func populate(r *rand.Rand, ks *KState) {
	ks.IRQL = uint8(r.Intn(3))
	ks.IRQLStack = append(ks.IRQLStack, uint8(r.Intn(3)), uint8(r.Intn(3)))
	for i := 0; i < 3; i++ {
		if _, err := ks.HeapAlloc(uint32(16+r.Intn(64)), "t", "pool", uint64(i), uint32(i)); err != nil {
			panic(err)
		}
	}
	ks.Spinlocks[0x9000] = &Spin{Held: true, OldIrql: 1, Inited: true}
	ks.ConfigHandles[ks.NewHandle()] = ConfigHandle{Label: "cfg", PC: 0x100100}
	ks.Timers[0x9100] = &Timer{Initialized: true, FuncPC: 0x100200, Ctx: 7, Queued: r.Intn(2) == 0}
	ks.PacketPools[0x9200] = &Pool{Capacity: 8, Live: 2}
	ks.BufferPools[0x9300] = &Pool{Capacity: 4, Live: 1}
	ks.Packets[0x9400] = PacketInfo{Pool: 0x9200, PC: 0x100300}
	ks.Registry["key"] = r.Uint32()
	ks.IntrSyncs[0x9500] = true
	ks.Miniport = &MiniportChars{InitializePC: 0x100400, SendPC: 0x100408, ISRPC: 0x100410}
	ks.Audio = &AudioChars{InitializePC: 0x100500, PlayPC: 0x100508}
	ks.Storage = &StorageChars{InitializePC: 0x100700, ReadPC: 0x100708, PnpPC: 0x100710}
	ks.Dpcs[0x9600] = &DpcObj{Inited: true, FuncPC: 0x100800, Ctx: 3, Queued: r.Intn(2) == 0}
	ks.ISRRegistered = true
	ks.ISRPC = 0x100410
	ks.PendingDPCs = append(ks.PendingDPCs, DPC{FuncPC: 0x100600, Ctx: 1, Label: "dpc"})
	ks.PowerState = PowerDeviceD0
	ks.Removed = r.Intn(2) == 0
}

// mutateChild rewrites every mutable structure of the fork — the mutations
// a snapshot-then-fork execution pattern performs on resumed children.
func mutateChild(c *KState) {
	c.IRQL = 2
	c.IRQLStack = append(c.IRQLStack, 9)
	if len(c.IRQLStack) > 1 {
		c.IRQLStack[0] = 7
	}
	for _, a := range c.Allocs {
		a.Tag = "mutated"
		a.Size = 0xFFFF
	}
	if _, err := c.HeapAlloc(32, "child", "pool", 99, 0x100999); err != nil {
		panic(err)
	}
	for _, sp := range c.Spinlocks {
		sp.Held = false
		sp.DprOwned = true
	}
	for _, tm := range c.Timers {
		tm.Queued = !tm.Queued
		tm.FuncPC = 0xDEAD
	}
	for _, p := range c.PacketPools {
		p.Live = 100
		p.Freed = true
	}
	for _, p := range c.BufferPools {
		p.Live = 100
	}
	c.Packets[0xABCD] = PacketInfo{Pool: 1, PC: 2}
	c.Registry["key"] = 0xAAAA
	c.Registry["new"] = 1
	c.IntrSyncs[0x9500] = false
	c.Miniport.SendPC = 0xBEEF
	c.Audio.PlayPC = 0xBEEF
	c.Storage.ReadPC = 0xBEEF
	for _, o := range c.Dpcs {
		o.Queued = !o.Queued
		o.FuncPC = 0xDEAD
	}
	c.PowerState = PowerDeviceD3
	c.Removed = !c.Removed
	c.PendingDPCs = append(c.PendingDPCs, DPC{FuncPC: 0xF00D})
	if len(c.PendingDPCs) > 1 {
		c.PendingDPCs[0].Label = "mutated"
	}
	if len(c.Regions) > 0 {
		c.Regions[0].Writable = !c.Regions[0].Writable
	}
	c.Crashed = true
	c.CrashMsg = "child only"
	c.InDpc = true
	c.AllocFailForks = 42
}

// TestKStateForkNoAliasing is the snapshot-then-fork aliasing audit for the
// kernel half of a state snapshot: fork a fully populated KState, rewrite
// every mutable field of the child — timers, the DPC queue, pool and alloc
// records behind map pointers, the registry, the characteristics tables —
// and assert the parent is bit-for-bit untouched. A shallow-copied field
// would let one resumed execution corrupt the frozen snapshot every later
// resume replays from.
func TestKStateForkNoAliasing(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		parent := NewKState()
		populate(r, parent)
		before := fingerprint(parent)

		child := parent.Fork().(*KState)
		if fingerprint(child) != before {
			t.Fatal("fork is not a faithful copy")
		}
		mutateChild(child)
		if got := fingerprint(parent); got != before {
			t.Fatalf("seed %d: mutating the fork changed the parent:\nbefore:\n%s\nafter:\n%s", seed, before, got)
		}
		// And the other direction: mutating the parent must not leak into a
		// second, untouched fork.
		sibling := parent.Fork().(*KState)
		sibBefore := fingerprint(sibling)
		mutateChild(parent)
		if fingerprint(sibling) != sibBefore {
			t.Fatalf("seed %d: mutating the parent changed an earlier fork", seed)
		}
	}
}
