// Package kernel implements the simulated operating system the drivers run
// against: an NDIS/WDM-flavoured kernel API, Plug-and-Play driver loading,
// IRQL and spinlock semantics, timers and DPCs, a registry, packet pools,
// and BugCheck ("blue screen") interception.
//
// In the paper, DDT runs the real Windows kernel concretely inside QEMU and
// only the driver symbolically. Here the kernel is concrete Go code invoked
// when driver execution CALLs into the import trap window; it maintains
// genuine per-path concrete state (KState, forked on every path split), so
// the symbolic/concrete boundary mechanics of §3.2 — argument
// concretization, state conversion, crash interception — are exercised the
// same way.
package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Handler implements one kernel API. It may modify s, return forked
// alternative states, or raise a Fault (which fails the path as a bug).
type Handler func(k *Kernel, s *vm.State) ([]*vm.State, error)

// Annotation hooks run around an API handler, in the spirit of §3.4: they
// inject symbolic values (concrete-to-symbolic hints), verify argument
// constraints (symbolic-to-concrete hints), and fork alternative API
// outcomes. OnReturn runs after the handler with the return value in R0.
type Annotation struct {
	API      string
	OnCall   func(ctx *AnnotCtx)
	OnReturn func(ctx *AnnotCtx)
}

// AnnotCtx gives annotation code controlled access to the execution state —
// the analogue of the paper's LLVM annotation API (ddt_new_symb_int,
// ddt_discard_state, ARG(cpu, i)).
type AnnotCtx struct {
	K *Kernel
	S *vm.State
	// API is the name of the kernel function being annotated.
	API string
	// CallArgs snapshots r0-r3 at the moment of the call, so OnReturn
	// annotations can still see arguments after the handler overwrote R0.
	CallArgs [4]*expr.Expr
	// Extra accumulates forked states created by the annotation.
	Extra []*vm.State
	// discarded marks the current state as to-be-dropped.
	discarded bool
	// bug carries a fault raised by a rule-checking annotation.
	bug error
}

// Arg returns the i-th integer argument of the current API call as
// captured at call time (r0-r3, then the stack).
func (c *AnnotCtx) Arg(i int) *expr.Expr {
	if i < 4 {
		return c.CallArgs[i]
	}
	return c.K.Arg(c.S, i)
}

// ArgConcrete concretizes the i-th argument.
func (c *AnnotCtx) ArgConcrete(i int) uint32 {
	v, err := c.K.M.Concretize(c.S, c.Arg(i), fmt.Sprintf("arg%d", i))
	if err != nil {
		c.bug = err
		return 0
	}
	return v
}

// Ret returns the current return value (R0).
func (c *AnnotCtx) Ret() *expr.Expr { return c.S.Reg(isa.R0) }

// SetRet overrides the return value.
func (c *AnnotCtx) SetRet(e *expr.Expr) { c.S.SetReg(isa.R0, e) }

// NewSymbol creates a fresh symbolic value recorded with the given origin.
func (c *AnnotCtx) NewSymbol(name string, origin expr.Origin) *expr.Expr {
	return c.K.FreshSymbol(c.S, name, origin)
}

// Fork clones the current state; the clone is queued for exploration.
// Mutations applied to the returned state happen on the alternative path.
// The alternative's trace records the fork (EvAltFork) so replays can steer
// down the same outcome.
//
// Under a replay ForkPolicy, Fork instead either redirects the mutations to
// the live state (the recorded path took the alternative) or hands back a
// discarded dummy (the recorded path stayed on the primary outcome).
func (c *AnnotCtx) Fork() *vm.State {
	if c.K.ForkPolicy != nil {
		if c.K.ForkPolicy(c.S, c.API) {
			return c.S
		}
		dummy := c.K.M.ForkState(c.S)
		dummy.Status = vm.StatusKilled
		return dummy
	}
	ns := c.K.M.ForkState(c.S)
	ns.Trace.Append(vm.Event{Kind: vm.EvAltFork, Seq: ns.ICount, PC: ns.PC, Name: c.API})
	c.Extra = append(c.Extra, ns)
	return ns
}

// Discard drops the current path (the paper's ddt_discard_state).
func (c *AnnotCtx) Discard() { c.discarded = true }

// RaiseBug fails the path with a checker-style fault.
func (c *AnnotCtx) RaiseBug(class, format string, args ...any) {
	c.bug = vm.Faultf(class, c.S.PC, format, args...)
}

// ReadMem reads size bytes at addr from the guest as an expression.
func (c *AnnotCtx) ReadMem(addr, size uint32) *expr.Expr { return c.S.Mem.Read(addr, size) }

// WriteMem writes an expression into guest memory.
func (c *AnnotCtx) WriteMem(addr, size uint32, v *expr.Expr) { c.S.Mem.Write(addr, size, v) }

// Kernel is the per-session simulated OS. It is shared across all execution
// states of a run; per-path state lives in KState.
type Kernel struct {
	M   *vm.Machine
	api map[string]Handler

	// Annotations by API name. Nil entries are fine; DDT's default mode
	// (§3.4, "no annotations") still works, with reduced coverage.
	Annotations map[string][]Annotation

	// slotNames caches import-slot -> API name for the loaded image.
	slotNames []string

	// Symbol sequence counter for naming. Atomic: parallel workers mint
	// symbols concurrently (a single-worker run sees the exact sequential
	// numbering).
	symSeq atomic.Uint64

	// VerifierChecks enables the in-guest Driver Verifier-style checks
	// (IRQL rules, spinlock ownership, pool sanity). This is the knob the
	// Driver Verifier baseline reuses.
	VerifierChecks bool

	// OnBoundary is invoked at each kernel/driver boundary crossing (before
	// and after every API call). The engine uses it to inject symbolic
	// interrupts (§3.3: one injection point per equivalence class of
	// arrival times). Returned states are queued for exploration.
	OnBoundary func(s *vm.State, api string, when string) []*vm.State

	// ForkPolicy, when set (trace replay), decides annotation forks
	// deterministically instead of exploring both outcomes: true means
	// "take the alternative on the live state".
	ForkPolicy func(s *vm.State, api string) bool

	// SymbolPolicy, when set (trace replay), supplies the value for every
	// would-be symbolic injection instead of minting a fresh symbol — this
	// is how a trace's solved concrete inputs drive the re-execution.
	SymbolPolicy func(s *vm.State, name string, origin expr.Origin) *expr.Expr

	// SymbolSeed, when set (concolic bridging), biases exploration toward a
	// concrete input prefix: the idx-th symbol minted on a path is still a
	// genuine symbol, but when the seed answers for that index an equality
	// constraint pins it to the seeded value. Symbolic execution then forks
	// only past the seeded prefix — the standard way to lift a fuzzer feed
	// into a symbolic boot state without losing soundness.
	SymbolSeed func(idx uint64, name string, origin expr.Origin) (uint32, bool)

	// Stats. APICallCount is guarded by statsMu during execution; read it
	// only after the run completes (or via CallCount).
	APICallCount map[string]uint64
	statsMu      sync.Mutex
}

// New attaches a kernel to a machine.
func New(m *vm.Machine) *Kernel {
	k := &Kernel{
		M:              m,
		api:            make(map[string]Handler),
		Annotations:    make(map[string][]Annotation),
		VerifierChecks: true,
		APICallCount:   make(map[string]uint64),
	}
	registerNdisAPI(k)
	registerWdmAPI(k)
	k.slotNames = append([]string(nil), m.Img.Imports...)
	m.APICall = k.dispatch
	m.OnInterruptReturn = k.interruptReturn
	return k
}

// Register installs (or replaces) an API handler.
func (k *Kernel) Register(name string, h Handler) { k.api[name] = h }

// Has reports whether the kernel implements the named API.
func (k *Kernel) Has(name string) bool { _, ok := k.api[name]; return ok }

// Annotate adds an annotation for an API.
func (k *Kernel) Annotate(a Annotation) {
	k.Annotations[a.API] = append(k.Annotations[a.API], a)
}

// ClearAnnotations removes all annotations (the paper's ablation run).
func (k *Kernel) ClearAnnotations() {
	k.Annotations = make(map[string][]Annotation)
}

// FreshSymbol mints a named symbolic value with provenance and logs its
// creation in the path trace. Under a replay SymbolPolicy it instead
// returns the recorded concrete input.
func (k *Kernel) FreshSymbol(s *vm.State, name string, origin expr.Origin) *expr.Expr {
	if k.SymbolPolicy != nil {
		return k.SymbolPolicy(s, name, origin)
	}
	seq := k.symSeq.Add(1)
	e := k.M.Syms.Fresh(fmt.Sprintf("%s#%d", name, seq), origin, s.PC, s.ICount)
	s.Trace.Append(vm.Event{Kind: vm.EvNewSym, Seq: s.ICount, PC: s.PC, Sym: e.Sym, Name: name})
	if k.SymbolSeed != nil {
		if s.Meta == nil {
			s.Meta = make(map[string]uint64)
		}
		idx := s.Meta[metaSymSeedIdx]
		s.Meta[metaSymSeedIdx] = idx + 1
		if v, ok := k.SymbolSeed(idx, name, origin); ok {
			s.AddConstraint(expr.Eq(e, expr.Const(v)))
		}
	}
	return e
}

// metaSymSeedIdx counts symbols minted on a path, the per-path cursor into
// a SymbolSeed prefix (forks inherit it, so siblings stay aligned).
const metaSymSeedIdx = "symseed_idx"

// Arg returns the i-th argument under the d32 calling convention:
// r0-r3, then 4-byte stack slots.
func (k *Kernel) Arg(s *vm.State, i int) *expr.Expr {
	if i < 4 {
		return s.Reg(uint8(i))
	}
	sp, ok := s.RegConcrete(isa.SP)
	if !ok {
		return expr.Const(0)
	}
	return s.Mem.Read(sp+uint32(4*(i-4)), 4)
}

// ArgConcrete concretizes the i-th argument, pinning it in the path
// constraints (the on-demand concretization of §3.2).
func (k *Kernel) ArgConcrete(s *vm.State, i int) (uint32, error) {
	return k.M.Concretize(s, k.Arg(s, i), fmt.Sprintf("arg%d", i))
}

// SetRet stores a concrete return value in R0.
func (k *Kernel) SetRet(s *vm.State, v uint32) { s.SetReg(isa.R0, expr.Const(v)) }

// dispatch is installed as the machine's APICall hook.
func (k *Kernel) dispatch(s *vm.State, slot int) ([]*vm.State, error) {
	if slot >= len(k.slotNames) {
		return nil, vm.Faultf("api", s.PC, "call to unknown import slot %d", slot)
	}
	name := k.slotNames[slot]
	k.statsMu.Lock()
	k.APICallCount[name]++
	k.statsMu.Unlock()
	h, ok := k.api[name]
	if !ok {
		return nil, vm.Faultf("api", s.PC, "driver imports unimplemented kernel API %q", name)
	}

	var extra []*vm.State
	var callArgs [4]*expr.Expr
	for i := range callArgs {
		callArgs[i] = s.Reg(uint8(i))
	}

	if k.OnBoundary != nil {
		extra = append(extra, k.OnBoundary(s, name, "call")...)
	}

	// OnCall annotations (symbolic-to-concrete usage rules).
	for _, a := range k.Annotations[name] {
		if a.OnCall == nil {
			continue
		}
		ctx := &AnnotCtx{K: k, S: s, API: name, CallArgs: callArgs}
		a.OnCall(ctx)
		extra = append(extra, ctx.Extra...)
		if ctx.bug != nil {
			s.Status = vm.StatusBug
			return extra, ctx.bug
		}
		if ctx.discarded {
			s.Status = vm.StatusKilled
			return extra, nil
		}
	}

	more, err := h(k, s)
	extra = append(extra, more...)
	if err != nil {
		s.Status = vm.StatusBug
		return extra, err
	}
	if s.Status != vm.StatusRunning {
		return extra, nil
	}

	// OnReturn annotations (concrete-to-symbolic conversion hints).
	for _, a := range k.Annotations[name] {
		if a.OnReturn == nil {
			continue
		}
		ctx := &AnnotCtx{K: k, S: s, API: name, CallArgs: callArgs}
		a.OnReturn(ctx)
		extra = append(extra, ctx.Extra...)
		if ctx.bug != nil {
			s.Status = vm.StatusBug
			return extra, ctx.bug
		}
		if ctx.discarded {
			s.Status = vm.StatusKilled
			return extra, nil
		}
	}

	if k.OnBoundary != nil {
		extra = append(extra, k.OnBoundary(s, name, "return")...)
	}
	return extra, nil
}

// CallCount returns how often the named API was dispatched (safe during a
// parallel run, unlike reading APICallCount directly).
func (k *Kernel) CallCount(name string) uint64 {
	k.statsMu.Lock()
	defer k.statsMu.Unlock()
	return k.APICallCount[name]
}

// BugCheck crashes the guest: the path terminates with a crash fault. This
// is both KeBugCheckEx and the interception point for all in-guest checker
// crashes (§3.4's kernel crash handler hook).
func (k *Kernel) BugCheck(s *vm.State, code uint32, msg string) error {
	ks := Of(s)
	ks.Crashed = true
	ks.CrashCode = code
	ks.CrashMsg = msg
	s.Status = vm.StatusBug
	return vm.Faultf("crash", s.PC, "BSOD %#08x: %s", code, msg)
}

// verifierBug raises a Driver Verifier-style bug when in-guest checks are
// enabled; when disabled it degrades to a silent success (stress testing
// without DV would simply not notice).
func (k *Kernel) verifierBug(s *vm.State, code uint32, format string, args ...any) error {
	if !k.VerifierChecks {
		return nil
	}
	return k.BugCheck(s, code, fmt.Sprintf(format, args...))
}

// Invoke prepares state s to run a driver entry point: arguments in r0-r3,
// return to ExitAddr, block accounting reset. The exerciser then steps the
// state to completion.
func (k *Kernel) Invoke(s *vm.State, name string, pc uint32, args ...uint32) {
	for i, a := range args {
		if i >= 4 {
			break
		}
		s.SetReg(uint8(i), expr.Const(a))
	}
	s.SetReg(isa.LR, expr.Const(vm.ExitAddr))
	s.PC = pc
	s.EntryName = name
	s.Status = vm.StatusRunning
	s.Trace.Append(vm.Event{Kind: vm.EvEntry, Seq: s.ICount, PC: pc, Name: name})
	k.M.MarkBlockStart(s)
}

// InvokeSym is Invoke with expression arguments (symbolic entry-point
// arguments, e.g. a symbolic OID).
func (k *Kernel) InvokeSym(s *vm.State, name string, pc uint32, args ...*expr.Expr) {
	for i, a := range args {
		if i >= 4 {
			break
		}
		s.SetReg(uint8(i), a)
	}
	s.SetReg(isa.LR, expr.Const(vm.ExitAddr))
	s.PC = pc
	s.EntryName = name
	s.Status = vm.StatusRunning
	s.Trace.Append(vm.Event{Kind: vm.EvEntry, Seq: s.ICount, PC: pc, Name: name})
	k.M.MarkBlockStart(s)
}

// InjectInterrupt delivers an interrupt to the driver's registered ISR at
// DeviceLevel, saving the interrupted context. It reports false when the
// driver has not registered an ISR.
func (k *Kernel) InjectInterrupt(s *vm.State) bool {
	ks := Of(s)
	if !ks.ISRRegistered || ks.ISRPC == 0 {
		return false
	}
	s.Trace.Append(vm.Event{Kind: vm.EvInterrupt, Seq: s.ICount, PC: s.PC})
	s.PushInterrupt(ks.ISRPC)
	ks.IRQLStack = append(ks.IRQLStack, ks.IRQL)
	ks.IRQL = DeviceLevel
	k.M.MarkBlockStart(s)
	return true
}

// interruptReturn restores the pre-interrupt IRQL; installed as the
// machine's OnInterruptReturn hook.
func (k *Kernel) interruptReturn(s *vm.State) {
	ks := Of(s)
	if n := len(ks.IRQLStack); n > 0 {
		ks.IRQL = ks.IRQLStack[n-1]
		ks.IRQLStack = ks.IRQLStack[:n-1]
	} else {
		ks.IRQL = PassiveLevel
	}
}
