package kernel

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/solver"
	"repro/internal/vm"
)

// harness assembles src, builds machine+kernel, returns a ready root state
// positioned at the entry.
func harness(t *testing.T, src string) (*Kernel, *vm.State) {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
	k := New(m)
	s := m.NewRootState()
	ks := NewKState()
	ks.Grant(Region{Lo: isa.ImageBase, Hi: img.LimitVA(), Kind: RegionImage, Writable: true, Tag: "image"})
	s.Kernel = ks
	k.Invoke(s, "DriverEntry", img.Entry)
	return k, s
}

// drain runs all states to completion, returning exited finals and faults.
func drain(t *testing.T, k *Kernel, s *vm.State) (finals []*vm.State, faults []error) {
	t.Helper()
	work := []*vm.State{s}
	for len(work) > 0 {
		st := work[0]
		work = work[1:]
		final, forked, err := k.M.Run(st, 200000)
		work = append(work, forked...)
		if err != nil {
			faults = append(faults, err)
			continue
		}
		if final.Status == vm.StatusExited {
			finals = append(finals, final)
		}
	}
	return finals, faults
}

func TestAllocateAndFreeMemory(t *testing.T) {
	k, s := harness(t, `
.import NdisAllocateMemoryWithTag
.import NdisFreeMemory
.entry e
.text
e:
    push lr
    addi sp, sp, -4      ; local: out pointer
    mov  r0, sp          ; ptrPtr
    movi r1, 128         ; length
    movi r2, 0x1234      ; tag
    call NdisAllocateMemoryWithTag
    mov  r4, r0          ; status
    ldw  r5, [sp+0]      ; allocated pointer
    stw  [r5+0], r4      ; touch the allocation
    mov  r0, r5
    movi r1, 128
    movi r2, 0
    call NdisFreeMemory
    addi sp, sp, 4
    pop  lr
    mov  r0, r4
    ret
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	if len(finals) != 1 {
		t.Fatalf("finals = %d", len(finals))
	}
	if v, _ := finals[0].RegConcrete(isa.R0); v != StatusSuccess {
		t.Errorf("status = %#x", v)
	}
	if live := Of(finals[0]).LiveAllocs(); len(live) != 0 {
		t.Errorf("leaked allocations: %v", live)
	}
}

func TestFreeOfBadPointerIsBug(t *testing.T) {
	k, s := harness(t, `
.import NdisFreeMemory
.entry e
.text
e:
    push lr
    movi r0, 0xDEAD0
    call NdisFreeMemory
    pop  lr
    ret
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "non-allocated") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestConfigurationOpenReadClose(t *testing.T) {
	k, s := harness(t, `
.import NdisOpenConfiguration
.import NdisReadConfiguration
.import NdisCloseConfiguration
.entry e
.text
e:
    push lr
    addi sp, sp, -12       ; [sp+0]=status [sp+4]=handle [sp+8]=paramPtr
    mov  r0, sp
    addi r1, sp, 4
    call NdisOpenConfiguration
    ; read "Speed"
    mov  r0, sp            ; statusPtr
    addi r1, sp, 8         ; paramPtrPtr
    ldw  r2, [sp+4]        ; handle
    movi r3, name
    push r3                ; overflow arg? no: 4 register args + type on stack
    movi r3, name
    call NdisReadConfiguration
    pop  r12
    ldw  r4, [sp+8]        ; param block
    ldw  r5, [r4+4]        ; IntegerData
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 12
    pop  lr
    mov  r0, r5
    ret
.data
name: .asciz "Speed"
`)
	Of(s).Registry["Speed"] = 100
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	if len(finals) != 1 {
		t.Fatalf("finals = %d", len(finals))
	}
	if v, _ := finals[0].RegConcrete(isa.R0); v != 100 {
		t.Errorf("config value = %d, want 100", v)
	}
	if open := Of(finals[0]).OpenConfigHandles(); len(open) != 0 {
		t.Errorf("config handle leaked: %v", open)
	}
}

func TestSpinLockRaisesIrqlAndRestores(t *testing.T) {
	k, s := harness(t, `
.import NdisAllocateSpinLock
.import NdisAcquireSpinLock
.import NdisReleaseSpinLock
.entry e
.text
e:
    push lr
    movi r4, lock
    mov  r0, r4
    call NdisAllocateSpinLock
    mov  r0, r4
    call NdisAcquireSpinLock
    mov  r0, r4
    call NdisReleaseSpinLock
    pop  lr
    ret
.data
lock: .word 0
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	ks := Of(finals[0])
	if ks.IRQL != PassiveLevel {
		t.Errorf("final IRQL = %s", IrqlName(ks.IRQL))
	}
	if held := ks.HeldSpinlocks(); len(held) != 0 {
		t.Errorf("locks still held: %v", held)
	}
}

func TestDoubleAcquireIsDeadlock(t *testing.T) {
	k, s := harness(t, `
.import NdisAcquireSpinLock
.entry e
.text
e:
    push lr
    movi r4, lock
    mov  r0, r4
    call NdisAcquireSpinLock
    mov  r0, r4
    call NdisAcquireSpinLock
    pop  lr
    ret
.data
lock: .word 0
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 {
		t.Fatalf("faults = %v", faults)
	}
	f := faults[0].(*vm.Fault)
	if f.Class != "deadlock" {
		t.Errorf("class = %s", f.Class)
	}
}

func TestReleaseNotHeldIsBug(t *testing.T) {
	k, s := harness(t, `
.import NdisReleaseSpinLock
.entry e
.text
e:
    push lr
    movi r0, lock
    call NdisReleaseSpinLock
    pop  lr
    ret
.data
lock: .word 0
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "not held") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestDprReleaseOfNonDprAcquireIsBug(t *testing.T) {
	k, s := harness(t, `
.import NdisAcquireSpinLock
.import NdisDprReleaseSpinLock
.entry e
.text
e:
    push lr
    movi r4, lock
    mov  r0, r4
    call NdisAcquireSpinLock
    mov  r0, r4
    call NdisDprReleaseSpinLock
    pop  lr
    ret
.data
lock: .word 0
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "NdisDprReleaseSpinLock") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestNonDprReleaseOfDprAcquireIsBug(t *testing.T) {
	// This is the exact Intel Pro/100 bug of Table 2.
	k, s := harness(t, `
.import NdisDprAcquireSpinLock
.import NdisReleaseSpinLock
.entry e
.text
e:
    push lr
    movi r4, lock
    mov  r0, r4
    call NdisDprAcquireSpinLock
    mov  r0, r4
    call NdisReleaseSpinLock
    pop  lr
    ret
.data
lock: .word 0
`)
	// DPC context: already at DISPATCH_LEVEL.
	Of(s).IRQL = DispatchLevel
	Of(s).InDpc = true
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "IRQL corruption") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestTimerBeforeInitIsBug(t *testing.T) {
	k, s := harness(t, `
.import NdisMSetTimer
.entry e
.text
e:
    push lr
    movi r0, timer
    movi r1, 100
    call NdisMSetTimer
    pop  lr
    ret
.data
timer: .space 16
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "uninitialized timer") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestTimerInitThenSetQueuesDPC(t *testing.T) {
	k, s := harness(t, `
.import NdisMInitializeTimer
.import NdisMSetTimer
.entry e
.text
e:
    push lr
    movi r0, timer
    movi r1, 0
    movi r2, timerfunc
    movi r3, 0
    call NdisMInitializeTimer
    movi r0, timer
    movi r1, 50
    call NdisMSetTimer
    pop  lr
    ret
timerfunc:
    ret
.data
timer: .space 16
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	ks := Of(finals[0])
	if len(ks.PendingDPCs) != 1 || ks.PendingDPCs[0].Label != "timer" {
		t.Errorf("pending DPCs = %v", ks.PendingDPCs)
	}
}

func TestMiniportRegistrationAndInterrupt(t *testing.T) {
	k, s := harness(t, `
.import NdisMRegisterMiniport
.import NdisMRegisterInterrupt
.entry e
.text
e:
    push lr
    movi r0, chars
    call NdisMRegisterMiniport
    movi r0, intr
    call NdisMRegisterInterrupt
    pop  lr
    ret
init: ret
send: ret
qry:  ret
set:  ret
halt: ret
isr:  ret
hint: ret
.data
chars: .word init, send, qry, set, halt, isr, hint
intr:  .space 16
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	ks := Of(finals[0])
	if ks.Miniport == nil {
		t.Fatal("miniport not registered")
	}
	if !ks.ISRRegistered || ks.ISRPC != ks.Miniport.ISRPC {
		t.Errorf("ISR registration: %+v", ks)
	}
	if ks.Miniport.InitializePC == 0 || ks.Miniport.HaltPC == 0 {
		t.Errorf("chars = %+v", ks.Miniport)
	}
}

func TestInterruptInjectionRunsISRAtDeviceLevel(t *testing.T) {
	k, s := harness(t, `
.import NdisMRegisterMiniport
.import NdisMRegisterInterrupt
.import KeGetCurrentIrql
.entry e
.text
e:
    push lr
    movi r0, chars
    call NdisMRegisterMiniport
    movi r0, intr
    call NdisMRegisterInterrupt
    pop  lr
    movi r0, 0
    ret
isr:
    push lr
    call KeGetCurrentIrql
    movi r1, irqlbox
    stw  [r1+0], r0
    pop  lr
    ret
init: ret
.data
chars: .word init, init, init, init, init, isr, init
irqlbox: .word 0
intr:  .space 16
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	f := finals[0]
	// Inject an interrupt now and run the ISR.
	if !k.InjectInterrupt(f) {
		t.Fatal("interrupt not injectable after registration")
	}
	f.Status = vm.StatusRunning
	// ISR returns to IntrRetAddr, which restores the pre-interrupt context;
	// PC was ExitAddr... the state then exits again.
	finals2, faults2 := drain(t, k, f)
	if len(faults2) != 0 {
		t.Fatalf("ISR faults: %v", faults2)
	}
	if len(finals2) != 1 {
		t.Fatalf("finals after ISR = %d", len(finals2))
	}
	irqlSeen := finals2[0].Mem.Read(imageSym(t, k, "irqlbox"), 4)
	if !irqlSeen.IsConst() || irqlSeen.ConstVal() != uint32(DeviceLevel) {
		t.Errorf("ISR saw IRQL %v, want DEVICE_LEVEL", irqlSeen)
	}
	if Of(finals2[0]).IRQL != PassiveLevel {
		t.Errorf("IRQL after ISR = %s", IrqlName(Of(finals2[0]).IRQL))
	}
}

// imageSym returns the address of a known data label in the interrupt test
// image: chars occupies 7 words (28 bytes) at the data base, irqlbox is the
// word immediately after.
func imageSym(t *testing.T, k *Kernel, name string) uint32 {
	t.Helper()
	switch name {
	case "irqlbox":
		return k.M.Img.DataBase() + 28
	}
	t.Fatalf("unknown symbol %q", name)
	return 0
}

func TestBugCheckCrashesPath(t *testing.T) {
	k, s := harness(t, `
.import KeBugCheckEx
.entry e
.text
e:
    push lr
    movi r0, 0xE2
    call KeBugCheckEx
    pop  lr
    ret
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 {
		t.Fatalf("faults = %v", faults)
	}
	f := faults[0].(*vm.Fault)
	if f.Class != "crash" || !strings.Contains(f.Msg, "0x000000e2") {
		t.Errorf("fault = %v", f)
	}
}

func TestExAllocateAndFreePool(t *testing.T) {
	k, s := harness(t, `
.import ExAllocatePoolWithTag
.import ExFreePoolWithTag
.entry e
.text
e:
    push lr
    movi r0, 0          ; NonPagedPool
    movi r1, 256
    movi r2, 0x706F6F6C
    call ExAllocatePoolWithTag
    mov  r4, r0
    stw  [r4+0], r4     ; touch
    mov  r0, r4
    movi r1, 0x706F6F6C
    call ExFreePoolWithTag
    pop  lr
    ret
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	if len(Of(finals[0]).LiveAllocs()) != 0 {
		t.Error("pool allocation leaked")
	}
}

func TestPagedPoolAtDispatchIsBug(t *testing.T) {
	k, s := harness(t, `
.import ExAllocatePoolWithTag
.entry e
.text
e:
    push lr
    movi r0, 1          ; PagedPool
    movi r1, 64
    movi r2, 0
    call ExAllocatePoolWithTag
    pop  lr
    ret
`)
	Of(s).IRQL = DispatchLevel
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "paged pool") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestPacketPoolLifecycle(t *testing.T) {
	k, s := harness(t, `
.import NdisAllocatePacketPool
.import NdisAllocatePacket
.import NdisFreePacket
.import NdisFreePacketPool
.entry e
.text
e:
    push lr
    addi sp, sp, -12     ; [0]=status [4]=pool [8]=pkt
    mov  r0, sp
    addi r1, sp, 4
    movi r2, 16
    movi r3, 0
    call NdisAllocatePacketPool
    mov  r0, sp
    addi r1, sp, 8
    ldw  r2, [sp+4]
    call NdisAllocatePacket
    ldw  r0, [sp+8]
    call NdisFreePacket
    ldw  r0, [sp+4]
    call NdisFreePacketPool
    addi sp, sp, 12
    pop  lr
    ret
`)
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	ks := Of(finals[0])
	if len(ks.PacketPools) != 0 || ks.LivePackets() != 0 {
		t.Errorf("pool state leaked: %+v", ks.PacketPools)
	}
}

func TestFreePoolWithOutstandingPacketsIsBug(t *testing.T) {
	k, s := harness(t, `
.import NdisAllocatePacketPool
.import NdisAllocatePacket
.import NdisFreePacketPool
.entry e
.text
e:
    push lr
    addi sp, sp, -12
    mov  r0, sp
    addi r1, sp, 4
    movi r2, 16
    movi r3, 0
    call NdisAllocatePacketPool
    mov  r0, sp
    addi r1, sp, 8
    ldw  r2, [sp+4]
    call NdisAllocatePacket
    ldw  r0, [sp+4]
    call NdisFreePacketPool
    addi sp, sp, 12
    pop  lr
    ret
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "outstanding") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestKStateForkIsolation(t *testing.T) {
	ks := NewKState()
	ks.Registry["X"] = 1
	a, _ := ks.HeapAlloc(64, "t", "pool", 0, 0)
	child := ks.Fork().(*KState)
	child.Registry["X"] = 2
	child.HeapFree(a)
	lockAt(child, 0x100).Held = true
	if ks.Registry["X"] != 1 {
		t.Error("registry leaked across fork")
	}
	if len(ks.Allocs) != 1 {
		t.Error("alloc table leaked across fork")
	}
	if sp, ok := ks.Spinlocks[0x100]; ok && sp.Held {
		t.Error("spinlock leaked across fork")
	}
}

func TestAnnotationForksAllocFailure(t *testing.T) {
	k, s := harness(t, `
.import ExAllocatePoolWithTag
.entry e
.text
e:
    push lr
    movi r0, 0
    movi r1, 64
    movi r2, 0
    call ExAllocatePoolWithTag
    pop  lr
    ret
`)
	// Annotation: also try the NULL return (concrete-to-symbolic hint).
	k.Annotate(Annotation{
		API: "ExAllocatePoolWithTag",
		OnReturn: func(ctx *AnnotCtx) {
			if ctx.Ret().IsConst() && ctx.Ret().ConstVal() != 0 {
				alt := ctx.Fork()
				Of(alt).HeapFree(ctx.Ret().ConstVal())
				alt.SetReg(isa.R0, expr.Const(0))
			}
		},
	})
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	if len(finals) != 2 {
		t.Fatalf("finals = %d, want 2 (success + failure)", len(finals))
	}
	vals := map[bool]bool{}
	for _, f := range finals {
		v, _ := f.RegConcrete(isa.R0)
		vals[v == 0] = true
	}
	if !vals[true] || !vals[false] {
		t.Error("missing success or failure outcome")
	}
}

func TestAnnotationDiscardState(t *testing.T) {
	k, s := harness(t, `
.import NdisStallExecution
.entry e
.text
e:
    push lr
    call NdisStallExecution
    pop  lr
    ret
`)
	k.Annotate(Annotation{
		API:    "NdisStallExecution",
		OnCall: func(ctx *AnnotCtx) { ctx.Discard() },
	})
	finals, faults := drain(t, k, s)
	if len(faults) != 0 || len(finals) != 0 {
		t.Fatalf("finals = %d, faults = %v (path should be discarded)", len(finals), faults)
	}
}

func TestAnnotationSymbolicReturn(t *testing.T) {
	k, s := harness(t, `
.import KeGetCurrentIrql
.entry e
.text
e:
    push lr
    call KeGetCurrentIrql
    pop  lr
    movi r2, 5
    bltu r0, r2, low
    movi r1, 1
    ret
low:
    movi r1, 0
    ret
`)
	k.Annotate(Annotation{
		API: "KeGetCurrentIrql",
		OnReturn: func(ctx *AnnotCtx) {
			ctx.SetRet(ctx.NewSymbol("irql", expr.OriginAPIReturn))
		},
	})
	finals, faults := drain(t, k, s)
	if len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	if len(finals) != 2 {
		t.Fatalf("finals = %d, want 2 (symbolic return must fork the branch)", len(finals))
	}
}

func TestUnimplementedImportFaults(t *testing.T) {
	k, s := harness(t, `
.import TotallyMadeUpAPI
.entry e
.text
e:
    push lr
    call TotallyMadeUpAPI
    pop  lr
    ret
`)
	_, faults := drain(t, k, s)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "unimplemented kernel API") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestIrqlNames(t *testing.T) {
	if IrqlName(PassiveLevel) != "PASSIVE_LEVEL" || IrqlName(DispatchLevel) != "DISPATCH_LEVEL" {
		t.Error("irql naming broken")
	}
}

func TestRegionKindStrings(t *testing.T) {
	for rk := RegionImage; rk <= RegionParam; rk++ {
		if rk.String() == "region?" {
			t.Errorf("kind %d unnamed", rk)
		}
	}
}
