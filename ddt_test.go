package ddt

import (
	"context"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	img, err := CorpusDriver("rtl8029", false)
	if err != nil {
		t.Fatal(err)
	}
	// Binary round-trip through the public loader.
	img2, err := LoadDriver(img.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	info := Inspect(img2)
	if info.Name != "rtl8029" || info.NumFunctions == 0 {
		t.Errorf("inspect: %+v", info)
	}

	rep, err := Test(context.Background(), img2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) != 5 {
		t.Errorf("bugs = %d, want 5", len(rep.Bugs))
	}
}

func TestFacadeSessionTraceReplay(t *testing.T) {
	img, err := CorpusDriver("intel-ac97", false)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(img, DefaultConfig())
	rep, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) != 1 {
		t.Fatalf("bugs = %d", len(rep.Bugs))
	}
	tr := sess.TraceBug(rep.Bugs[0])
	if !strings.Contains(tr.Summary(), "race condition") {
		t.Errorf("summary:\n%s", tr.Summary())
	}
	res, err := Replay(tr, img)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Errorf("replay failed: %v", res)
	}
}

func TestFacadeCorpusHelpers(t *testing.T) {
	names := CorpusNames()
	if len(names) < 8 {
		t.Errorf("corpus names = %v", names)
	}
	bugs, err := ExpectedBugs("rtl8029")
	if err != nil || len(bugs) != 5 {
		t.Errorf("expected bugs = %v, %v", bugs, err)
	}
	if _, err := ExpectedBugs("bogus"); err == nil {
		t.Error("bogus driver accepted")
	}
	if _, err := CorpusDriver("bogus", false); err == nil {
		t.Error("bogus corpus driver accepted")
	}
}

func TestFacadeConfigBounds(t *testing.T) {
	img, err := CorpusDriver("rtl8029", false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxPathsPerEntry = 4
	cfg.MaxStates = 16
	rep, err := Test(context.Background(), img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tight bounds cost coverage, never soundness: whatever is reported is
	// still real (subset of the 5).
	if len(rep.Bugs) > 5 {
		t.Errorf("bugs = %d", len(rep.Bugs))
	}
}

func TestFacadeFixedVariantIsClean(t *testing.T) {
	img, err := CorpusDriver("intel-pro100", true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Test(context.Background(), img, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) != 0 {
		t.Errorf("fixed variant: %d bugs", len(rep.Bugs))
	}
}
