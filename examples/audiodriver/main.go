// audiodriver: the sound-card scenario of §5 — the Ensoniq AudioPCI WDM
// driver, whose four Table 2 bugs need three different DDT mechanisms:
// forked allocation failures (two NULL-dereference crashes), and symbolic
// interrupts injected during initialization and playback (two races that no
// stress tester can schedule reliably).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	img, err := ddt.CorpusDriver("ensoniq-audiopci", false)
	if err != nil {
		log.Fatal(err)
	}

	report, err := ddt.Test(context.Background(), img, ddt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	fmt.Println("\nper-bug evidence:")
	for i, b := range report.Bugs {
		fmt.Printf("\nbug %d: %s\n", i+1, b.Describe())
		if b.InInterrupt {
			fmt.Println("  fired inside an injected interrupt handler — an interleaving")
			fmt.Println("  a concrete stress test would have to hit by luck")
		}
		fmt.Print(b.Inputs())
	}

	// The corrected build is clean: DDT's reports are all real.
	fixed, err := ddt.CorpusDriver("ensoniq-audiopci", true)
	if err != nil {
		log.Fatal(err)
	}
	cleanRep, err := ddt.Test(context.Background(), fixed, ddt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncorrected build: %d bug(s) — DDT reported no false positives\n", len(cleanRep.Bugs))
}
