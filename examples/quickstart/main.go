// Quickstart: test a closed-source driver binary with DDT and print the
// bug report — the end-user scenario of §1 (the "Test Now" button: decide
// whether a driver is trustworthy before loading it into your kernel).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// The RTL8029 NE2000-clone NDIS driver, as shipped (with its five
	// latent bugs). In a real deployment this binary would come from the
	// vendor; DDT needs nothing but the binary.
	img, err := ddt.CorpusDriver("rtl8029", false)
	if err != nil {
		log.Fatal(err)
	}

	info := ddt.Inspect(img)
	fmt.Printf("driver %q: %d KB binary, %d functions, %d kernel APIs used\n\n",
		info.Name, info.FileSize/1024, info.NumFunctions, info.KernelImports)

	report, err := ddt.Test(context.Background(), img, ddt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	if len(report.Bugs) > 0 {
		fmt.Println("\nVerdict: do NOT load this driver.")
	} else {
		fmt.Println("\nVerdict: no undesired behaviours found.")
	}
}
