// netdriver: the network-driver scenario of §5 — test a NIC miniport with
// symbolic packets, symbolic registry configuration, and symbolic
// interrupts; then demonstrate the §5.1 annotation ablation and replay the
// most interesting bug from its executable trace.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	img, err := ddt.CorpusDriver("amd-pcnet", false)
	if err != nil {
		log.Fatal(err)
	}

	// Full configuration: annotations on (symbolic registry values, forked
	// allocation failures, symbolic OIDs and packets), symbolic interrupts.
	fmt.Println("=== full DDT (annotations + symbolic interrupts) ===")
	sess := ddt.NewSession(img, ddt.DefaultConfig())
	full, err := sess.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(full)

	// Each bug carries executable evidence. Replay the first one.
	if len(full.Bugs) > 0 {
		bug := full.Bugs[0]
		fmt.Printf("\nreplaying: %s\n", bug.Describe())
		tr := sess.TraceBug(bug)
		fmt.Print(tr.Summary())
		res, err := ddt.Replay(tr, img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("replay:", res)
	}

	// Ablation: without annotations, the failure-path leaks disappear
	// (§5.1: "removing the annotations resulted in decreased code coverage,
	// so we did not find the memory leaks and the segmentation faults").
	fmt.Println("\n=== default mode (no annotations) ===")
	cfg := ddt.DefaultConfig()
	cfg.Annotations = false
	noAnnot, err := ddt.Test(context.Background(), img, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(noAnnot)
	fmt.Printf("\nannotations found %d bug(s); default mode found %d\n",
		len(full.Bugs), len(noAnnot.Bugs))
}
