// bugtriage: the §3.6 analysis workflow — after DDT reports bugs, decide
// which ones need malfunctioning hardware (using the device datasheet),
// reconstruct the execution tree of all failing paths, and emit the
// per-bug evidence a developer or certification lab would file.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	img, err := ddt.CorpusDriver("rtl8029", false)
	if err != nil {
		log.Fatal(err)
	}
	sess := ddt.NewSession(img, ddt.DefaultConfig())
	report, err := sess.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bug(s) in %q\n\n", len(report.Bugs), img.Name)

	// The datasheet slice for the RTL8029: the ISR status register (port
	// 0x07) reports the low event bits; interrupts fire only after the
	// IMR (port 0x0F) is programmed.
	spec := &ddt.DeviceSpec{
		Device: "rtl8029",
		Registers: map[string]ddt.RegisterRange{
			"hw_port_0x7": {Name: "ISR", Min: 0, Max: 0x7F},
		},
		InterruptEnableWrite: "hw_port_0xf",
	}

	var traces []*ddt.Trace
	for i, b := range report.Bugs {
		verdict := ddt.AnalyzeBug(b, spec)
		fmt.Printf("bug %d: %s\n", i+1, b.Describe())
		fmt.Printf("       hardware analysis: %s\n", verdict)
		traces = append(traces, sess.TraceBug(b))
	}

	// The execution tree: all five failing paths share the DriverEntry
	// prefix and diverge at the fork points DDT recorded (§3.5).
	tree := ddt.BuildExecTree(traces)
	fmt.Printf("\n%s", tree.Render())
}
