// customchecker: extending DDT with a custom dynamic checker and a custom
// interface annotation (§3.1's pluggable checkers, §3.4's annotations).
//
// The checker enforces a made-up site policy — "drivers must not keep more
// than one live pool allocation at any time" — by hooking the allocation
// API. The annotation demonstrates the paper's verbatim example: replacing
// a registry read's result with a fresh symbolic value.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/expr"
	"repro/internal/kernel"
)

func main() {
	img, err := ddt.CorpusDriver("amd-pcnet", false)
	if err != nil {
		log.Fatal(err)
	}

	sess := ddt.NewSession(img, ddt.DefaultConfig())
	eng := sess.Engine()

	// --- Custom checker: allocation budget. ---
	// Annotations run at API boundaries with full access to the per-path
	// kernel state; RaiseBug fails the path like any built-in checker.
	eng.K.Annotate(kernel.Annotation{
		API: "NdisAllocateMemoryWithTag",
		OnReturn: func(ctx *kernel.AnnotCtx) {
			ks := kernel.Of(ctx.S)
			live := 0
			for _, a := range ks.Allocs {
				if a.Kind == "pool" {
					live++
				}
			}
			if live > 1 {
				ctx.RaiseBug("policy", "allocation budget exceeded: %d live pool allocations", live)
			}
		},
	})

	// --- Custom annotation: the paper's NdisReadConfiguration example, for
	// a site-specific parameter. It creates an unconstrained symbolic
	// integer, discards negative values, and stores it as the result.
	eng.K.Annotate(kernel.Annotation{
		API: "NdisReadConfiguration",
		OnReturn: func(ctx *kernel.AnnotCtx) {
			if !ctx.Ret().IsConst() || ctx.Ret().ConstVal() != kernel.StatusSuccess {
				return
			}
			symb := ctx.NewSymbol("site_config", expr.OriginAnnotation)
			// ddt_discard_state equivalent: keep only non-negative values.
			ctx.S.AddConstraint(expr.SGe(symb, expr.Const(0)))
		},
	})

	report, err := sess.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	policy := 0
	for _, b := range report.Bugs {
		if b.Class == "policy" {
			policy++
			fmt.Printf("custom checker hit: %s\n", b.Describe())
		}
	}
	fmt.Printf("\n%d finding(s) from the custom checker, %d from the stock checkers\n",
		policy, len(report.Bugs)-policy)
}
