package ddt

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the regenerated artifact once (via b.Logf on the
// first iteration) and reports the usual Go timing/allocation metrics, so
// the same run yields both the reproduction data and its cost.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/baseline/sdv"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/fuzz"
	"repro/internal/isa"
	"repro/internal/solver"
	"repro/internal/vm"
)

// BenchmarkTable1Characteristics regenerates Table 1: the static
// characterization (binary size, code size, function count, kernel imports)
// of the six evaluation drivers, recovered from the closed binaries alone.
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		infos, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatTable1(infos))
		}
	}
}

// BenchmarkTable2BugDiscovery regenerates Table 2: one full DDT run per
// driver, asserting the found bug classes match the paper's 14 bugs.
func BenchmarkTable2BugDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, r := range rows {
			if !r.Matches() {
				b.Fatalf("%s: classes do not match Table 2", r.Driver)
			}
			total += len(r.Report.Bugs)
		}
		if total != 14 {
			b.Fatalf("found %d bugs, want 14", total)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatTable2(rows))
		}
	}
}

// BenchmarkFigure2RelativeCoverage regenerates Figure 2: relative
// basic-block coverage versus (simulated) time for the representative
// drivers, rising into the 60–90%% band with the per-entry-point step
// pattern the paper describes.
func BenchmarkFigure2RelativeCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Coverage()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			if r.Relative < 0.6 || r.Relative > 0.95 {
				b.Fatalf("%s: relative coverage %.0f%% outside the paper's band", r.Driver, 100*r.Relative)
			}
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatCoverage(runs, true))
		}
	}
}

// BenchmarkFigure3AbsoluteCoverage regenerates Figure 3: absolute covered
// basic blocks versus time for the same runs.
func BenchmarkFigure3AbsoluteCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Coverage()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatCoverage(runs, false))
		}
	}
}

// BenchmarkDriverVerifierBaseline regenerates the §5.1 Driver Verifier
// comparison: concrete stress testing with the same in-guest checks finds
// none of the 14 bugs.
func BenchmarkDriverVerifierBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DriverVerifier()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.BugsSeen != 0 {
				b.Fatalf("%s: Driver Verifier found %d bugs, paper says 0", r.Driver, r.BugsSeen)
			}
		}
		if i == 0 {
			b.Logf("Driver Verifier found 0 of the 14 Table 2 bugs (paper: 0)")
		}
	}
}

// BenchmarkSDVSampleBugs regenerates the §5.1 SDV head-to-head on the
// DDK-style sample driver: both tools find the 8 seeded bugs.
func BenchmarkSDVSampleBugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunSDVComparison()
		if err != nil {
			b.Fatal(err)
		}
		if cmp.SampleSDVFindings != 8 || cmp.SampleDDTBugs != 8 {
			b.Fatalf("sample bugs: SDV %d / DDT %d, want 8 / 8", cmp.SampleSDVFindings, cmp.SampleDDTBugs)
		}
		if i == 0 {
			b.Logf("\n%s", cmp.Format())
		}
	}
}

// BenchmarkSDVSyntheticBugs regenerates the §5.1 synthetic-bug comparison:
// SDV finds 2 of 5 plus one false positive; DDT finds all 5 with none.
func BenchmarkSDVSyntheticBugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunSDVComparison()
		if err != nil {
			b.Fatal(err)
		}
		if cmp.SynSDVReal != 2 || cmp.SynSDVFalse != 1 {
			b.Fatalf("SDV on synthetics: %d real + %d FP, want 2 + 1", cmp.SynSDVReal, cmp.SynSDVFalse)
		}
		if cmp.SynDDTBugs != 5 || cmp.SynDDTFalse != 0 {
			b.Fatalf("DDT on synthetics: %d real + %d FP, want 5 + 0", cmp.SynDDTBugs, cmp.SynDDTFalse)
		}
	}
}

// BenchmarkAnnotationAblation regenerates the §5.1 annotation experiment:
// with annotations off, races survive, leaks and segfaults are lost.
func BenchmarkAnnotationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.NoAnnot["resource leak"] != 0 || r.NoAnnot["segmentation fault"] != 0 {
				b.Fatalf("%s: leak/segfault found without annotations", r.Driver)
			}
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatAblation(rows))
		}
	}
}

// BenchmarkStateForkMemory measures the chained copy-on-write state
// representation (§4.1.3, §5.2's memory ceiling): deep fork chains share
// pages, so per-state cost stays far below a full snapshot.
func BenchmarkStateForkMemory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mem := vm.NewMemory()
		mem.WriteBytes(0x100000, make([]byte, 64<<10)) // 64 KiB image
		cur := mem
		for d := 0; d < 64; d++ {
			cur = cur.Fork()
			// Each state dirties one page — the typical per-path write set.
			cur.WriteBytes(0x200000+uint32(d)*vm.PageSize, []byte{1, 2, 3, 4})
		}
		if cur.Depth() != 64 {
			b.Fatal("bad depth")
		}
	}
}

// BenchmarkSchedulerHeuristics compares the coverage-guided heuristic
// against FIFO/LIFO exploration on the RTL8029 (§4.3's pluggable
// heuristics).
func BenchmarkSchedulerHeuristics(b *testing.B) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(img, core.DefaultOptions())
		rep, err := eng.TestDriver(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Bugs) != 5 {
			b.Fatalf("bugs = %d", len(rep.Bugs))
		}
	}
}

// BenchmarkSDVAnalysisOnly measures the static analyzer alone.
func BenchmarkSDVAnalysisOnly(b *testing.B) {
	img, err := corpus.Build("ddk-sample", corpus.Buggy)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sdv.Analyze(img)
		if len(rep.Findings) != 8 {
			b.Fatal("findings changed")
		}
	}
}

// BenchmarkFullRunRTL8029 is the end-to-end cost of one complete DDT
// session on the smallest driver ("a few minutes" of paper time; here
// deterministic simulated time).
func BenchmarkFullRunRTL8029(b *testing.B) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(img, core.DefaultOptions())
		if _, err := eng.TestDriver(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuzzExecsPerSec measures the concrete fuzzer's execution
// throughput on the RTL8029 — the number the concolic design rests on: one
// fuzz execution must be orders of magnitude cheaper than a symbolic
// exploration of the same workload. b.N is the exec budget; the metric of
// interest is execs/s (reported explicitly) next to ns/op. The campaign
// runs with the full hot path on — persistent-mode snapshot resume over
// the shared fabric plus superblock dispatch — since that is the
// production configuration (bit-identity with the slow paths is proved by
// the determinism suites).
func BenchmarkFuzzExecsPerSec(b *testing.B) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fuzz.DefaultConfig()
	cfg.Workers = 4
	cfg.MaxExecs = uint64(b.N)
	cfg.MinimizeBudget = 1 // throughput, not triage quality
	cfg.Persist = true
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := fuzz.New(img, cfg).Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if rep.Execs == 0 {
		b.Fatal("no executions")
	}
	b.ReportMetric(rep.ExecsPerSec, "execs/s")
	b.ReportMetric(float64(rep.Instructions)/float64(rep.Execs), "instrs/exec")
}

// BenchmarkFuzzPersistentVsColdStart measures what persistent-mode
// execution buys: the same deterministic single-worker campaign run twice —
// cold-start (every execution re-drives DriverEntry/Initialize) and
// persistent (boot prefixes are snapshotted and resumed, decided boots
// memoized) — on the two drivers the determinism suite gates. Reported
// metrics: per-mode campaign wall clock and execs/sec (us/exec is the
// lower-is-better form the CI bench gate tracks), the speedup, and the warm
// share. The benchmark itself asserts the two campaigns found the identical
// crash set — the speedup is only real if the found-bug set is unchanged
// (persist_test.go proves full bit-identity; this guards it stays true at
// benchmark scale).
func BenchmarkFuzzPersistentVsColdStart(b *testing.B) {
	for _, name := range []string{"rtl8029", "amd-pcnet"} {
		b.Run(name, func(b *testing.B) {
			img, err := corpus.Build(name, corpus.Buggy)
			if err != nil {
				b.Fatal(err)
			}
			campaign := func(persist bool) (*fuzz.Report, time.Duration) {
				cfg := fuzz.DefaultConfig()
				cfg.Workers = 1
				cfg.MaxExecs = 3_000
				cfg.MinimizeBudget = 1
				cfg.Persist = persist
				start := time.Now()
				rep, err := fuzz.New(img, cfg).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				return rep, time.Since(start)
			}
			var coldT, warmT time.Duration
			var coldRate, perRate, warmShare float64
			var per *fuzz.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cold, ct := campaign(false)
				var pt time.Duration
				per, pt = campaign(true)
				coldT += ct
				warmT += pt
				coldRate += cold.ExecsPerSec
				perRate += per.ExecsPerSec
				warmShare += float64(per.WarmExecs) / float64(per.Execs)
				if len(cold.Crashes) != len(per.Crashes) {
					b.Fatalf("bug set changed: cold %d crashes, persistent %d", len(cold.Crashes), len(per.Crashes))
				}
				for j, c := range cold.Crashes {
					if per.Crashes[j].Key() != c.Key() {
						b.Fatalf("bug set changed: %s vs %s", c.Key(), per.Crashes[j].Key())
					}
				}
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(coldT.Milliseconds())/n, "ms/cold-campaign")
			b.ReportMetric(float64(warmT.Milliseconds())/n, "ms/persist-campaign")
			b.ReportMetric(float64(coldT)/float64(warmT), "speedup")
			b.ReportMetric(float64(coldT.Microseconds())/n/float64(per.Execs), "us/exec-cold")
			b.ReportMetric(float64(warmT.Microseconds())/n/float64(per.Execs), "us/exec-persist")
			b.ReportMetric(coldRate/n, "cold-execs/s")
			b.ReportMetric(perRate/n, "persist-execs/s")
			b.ReportMetric(warmShare/n, "warm-share")
			b.Logf("%s: cold %v, persistent %v (%.1fx), %d/%d warm execs, %d boot instructions skipped",
				name, coldT/time.Duration(b.N), warmT/time.Duration(b.N),
				float64(coldT)/float64(warmT), per.WarmExecs, per.Execs, per.SkippedInstructions)
		})
	}
}

// BenchmarkStepLoopConcrete measures the interpreter's concrete hot path:
// a long straight-line ALU loop stepped to completion, per-instruction
// dispatch versus superblock dispatch (vm.Machine.StepSpan over the
// precomputed span table). The headline metrics are ns/instr-general and
// ns/instr-superblock — the per-instruction cost each mode pays on purely
// concrete spans — plus their ratio. Bit-identity between the two modes is
// proved by the vm superblock suite; this benchmark tracks the speed gap.
func BenchmarkStepLoopConcrete(b *testing.B) {
	// 32 ALU ops per iteration + loop control, 2000 iterations: ~68k
	// concrete instructions per program run, re-entering one superblock
	// from a block start every iteration.
	var sb strings.Builder
	sb.WriteString(".entry e\n.text\ne:\n    movi r0, 0\n    movi r1, 0\n    movi r2, 2000\nloop:\n")
	for j := 0; j < 8; j++ {
		sb.WriteString("    addi r3, r0, 7\n    xori r4, r3, 0xAA\n    shli r5, r4, 3\n")
		sb.WriteString("    sub  r6, r5, r3\n    andi r7, r6, 0xFFF\n    add  r0, r0, r7\n")
	}
	sb.WriteString("    addi r1, r1, 1\n    bltu r1, r2, loop\n    ret\n")
	img, err := asm.Assemble(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	perInstr := map[bool]float64{}
	for _, disable := range []bool{false, true} {
		name := "superblock"
		if disable {
			name = "general"
		}
		b.Run(name, func(b *testing.B) {
			m := vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
			m.DisableSuperblocks = disable
			var instrs uint64
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				s := m.NewRootState()
				s.PC = img.Entry
				s.SetReg(isa.LR, expr.Const(vm.ExitAddr))
				m.MarkBlockStart(s)
				final, forked, err := m.Run(s, 1_000_000)
				if err != nil || len(forked) != 0 {
					b.Fatalf("run: err=%v forks=%d", err, len(forked))
				}
				if final.Status != vm.StatusExited {
					b.Fatalf("status %v", final.Status)
				}
				instrs += final.ICount
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(instrs)
			perInstr[disable] = ns
			b.ReportMetric(ns, "ns/instr")
		})
	}
	if perInstr[false] > 0 && perInstr[true] > 0 {
		b.Logf("concrete step loop: superblock %.1f ns/instr, general %.1f ns/instr (%.2fx)",
			perInstr[false], perInstr[true], perInstr[true]/perInstr[false])
	}
}

// BenchmarkFuzzSharedSnapshotFabric measures what the campaign-wide
// snapshot fabric buys over per-worker snapshot stores: the same 4-worker
// persistent campaign run with one shared fabric versus private ones
// (Config.PrivateSnapshots). Reported per mode: us/exec (lower is better —
// the gate-tracked form), the number of cold boots the fleet paid
// (cold-execs), and for the shared run the cross-worker hit count. With
// private stores every worker cold-boots each hot prefix itself; the
// fabric pays for each roughly once.
func BenchmarkFuzzSharedSnapshotFabric(b *testing.B) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		b.Fatal(err)
	}
	campaign := func(private bool) (*fuzz.Report, time.Duration) {
		cfg := fuzz.DefaultConfig()
		cfg.Workers = 4
		cfg.MaxExecs = 6_000
		cfg.MinimizeBudget = 1
		cfg.Persist = true
		cfg.PrivateSnapshots = private
		start := time.Now()
		rep, err := fuzz.New(img, cfg).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return rep, time.Since(start)
	}
	var sharedT, privateT time.Duration
	var sharedCold, privateCold, sharedHits float64
	var sharedExecs, privateExecs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh, st := campaign(false)
		pr, pt := campaign(true)
		sharedT += st
		privateT += pt
		sharedCold += float64(sh.ColdExecs)
		privateCold += float64(pr.ColdExecs)
		sharedHits += float64(sh.SnapSharedHits)
		sharedExecs += sh.Execs
		privateExecs += pr.Execs
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(sharedT.Microseconds())/float64(sharedExecs), "us/exec-shared")
	b.ReportMetric(float64(privateT.Microseconds())/float64(privateExecs), "us/exec-private")
	b.ReportMetric(sharedCold/n, "cold-execs-shared")
	b.ReportMetric(privateCold/n, "cold-execs-private")
	b.ReportMetric(sharedHits/n, "shared-hits")
	b.Logf("4-worker persistent campaign: shared fabric %d cold boots (%d cross-worker hits), private caches %d cold boots",
		uint64(sharedCold/n), uint64(sharedHits/n), uint64(privateCold/n))
}

// BenchmarkCoverageFuzzVsSymbolicVsHybrid compares coverage over simulated
// time across the three exploration modes on the AMD PCnet driver: pure
// concrete fuzzing, pure symbolic execution, and the hybrid concolic loop.
// The first iteration logs the coverage each mode reached, giving future
// PRs a perf trajectory for the bridge.
func BenchmarkCoverageFuzzVsSymbolicVsHybrid(b *testing.B) {
	img, err := corpus.Build("amd-pcnet", corpus.Buggy)
	if err != nil {
		b.Fatal(err)
	}
	const execBudget = 2_000
	for i := 0; i < b.N; i++ {
		// Pure fuzzing.
		fcfg := fuzz.DefaultConfig()
		fcfg.Workers = 2
		fcfg.MaxExecs = execBudget
		frep, err := fuzz.New(img, fcfg).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		// Pure symbolic.
		eng := core.NewEngine(img, core.DefaultOptions())
		srep, err := eng.TestDriver(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		// Hybrid: engine seeds fuzzer, top feeds lifted back.
		hcfg := fuzz.DefaultConfig()
		hcfg.Workers = 2
		hcfg.MaxExecs = execBudget
		hrep, err := fuzz.Hybrid(context.Background(), img, hcfg, core.DefaultOptions(), 1)
		if err != nil {
			b.Fatal(err)
		}
		hybridBlocks := hrep.Fuzz.BlocksCovered // shared map: fuzz+symbolic+lifted
		// The symbolic engine is deterministic, and the hybrid's shared map
		// contains a full symbolic pass, so this inequality is exact. The
		// fuzz comparison is only logged: parallel-worker scheduling makes
		// its coverage-within-budget run-to-run noisy.
		if hybridBlocks < srep.BlocksCovered {
			b.Fatalf("hybrid coverage %d below the symbolic pass %d",
				hybridBlocks, srep.BlocksCovered)
		}
		if i == 0 {
			b.Logf("amd-pcnet coverage (of %d static blocks): fuzz=%d symbolic=%d hybrid=%d; "+
				"bug keys: fuzz=%d symbolic=%d hybrid=%d",
				frep.BlocksStatic, frep.BlocksCovered, srep.BlocksCovered, hybridBlocks,
				len(frep.Crashes), len(srep.Bugs), hrep.TotalBugKeys())
		}
	}
}

// BenchmarkFullRunPro1000 is the same for the largest driver.
func BenchmarkFullRunPro1000(b *testing.B) {
	img, err := corpus.Build("intel-pro1000", corpus.Buggy)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(img, core.DefaultOptions())
		if _, err := eng.TestDriver(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreParallelSpeedup measures the parallel symbolic engine's
// scaling curve: a full rtl8029 session at 1, 2, and 4 workers — barriered
// and, for the multi-worker counts, cross-phase pipelined — with the
// per-count wall clock and the speedup-vs-sequential reported as metrics
// (workers=1 is the deterministic sequential engine; the parallel runs
// share one solver query cache). The speedup-at-4 metrics are the
// headline: on a multi-core host the barriered run should exceed 1.5x and
// the pipelined run should beat the barriered one (no idle workers at
// phase boundaries); on a single-CPU host (GOMAXPROCS=1) no wall-clock
// speedup is physically possible and the metrics report the concurrency
// overhead instead. This benchmark is one of the two the CI bench
// regression gate tracks (cmd/benchgate).
func BenchmarkExploreParallelSpeedup(b *testing.B) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		b.Fatal(err)
	}
	type series struct {
		workers  int
		pipeline bool
	}
	configs := []series{{1, false}, {2, false}, {4, false}, {2, true}, {4, true}}
	session := func(s series) time.Duration {
		opts := core.DefaultOptions()
		opts.Workers = s.workers
		opts.Pipeline = s.pipeline
		eng := core.NewEngine(img, opts)
		start := time.Now()
		if _, err := eng.TestDriver(context.Background()); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	elapsed := map[series]time.Duration{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range configs {
			elapsed[s] += session(s)
		}
	}
	b.StopTimer()
	seq := elapsed[series{1, false}]
	for _, s := range configs[1:] {
		name := fmt.Sprintf("speedup@%dworkers", s.workers)
		if s.pipeline {
			name += "-pipelined"
		}
		b.ReportMetric(float64(seq)/float64(elapsed[s]), name)
	}
	b.ReportMetric(float64(seq.Milliseconds())/float64(b.N), "ms/seq-session")
	b.ReportMetric(float64(elapsed[series{4, false}].Milliseconds())/float64(b.N), "ms/4worker-session")
	b.ReportMetric(float64(elapsed[series{4, true}].Milliseconds())/float64(b.N), "ms/4worker-pipelined")
	b.Logf("GOMAXPROCS=%d: sequential %v, 4 workers barriered %v, 4 workers pipelined %v",
		runtime.GOMAXPROCS(0), seq/time.Duration(b.N),
		elapsed[series{4, false}]/time.Duration(b.N),
		elapsed[series{4, true}]/time.Duration(b.N))
}
