// Package ddt is a faithful reimplementation of DDT — "Testing
// Closed-Source Binary Device Drivers with DDT" (Kuznetsov, Chipounov,
// Candea; USENIX ATC 2010) — as a Go library.
//
// DDT tests closed-source binary device drivers by combining virtualization
// with selective symbolic execution: the driver binary runs symbolically
// inside a virtual machine while the (simulated, concrete) OS kernel around
// it runs natively. Fully symbolic hardware — a fake PCI device whose
// register reads return fresh symbolic values and whose writes are
// discarded — plus symbolic interrupts injected at kernel/driver boundary
// crossings let DDT explore driver behaviours that depend on device output
// and interrupt timing, with no physical device at all. Modular dynamic
// checkers flag memory errors, race conditions, deadlocks, resource leaks
// and kernel API misuse; every reported bug carries an executable trace
// with solved concrete inputs that replays deterministically to the same
// failure.
//
// Quick start:
//
//	img, err := ddt.LoadDriver(dxeBytes)          // a closed d32 binary
//	report, err := ddt.Test(img, ddt.DefaultConfig())
//	for _, bug := range report.Bugs {
//	    fmt.Println(bug.Describe())
//	    tr := ddt.TraceOf(bug, report)            // executable evidence
//	    res, _ := ddt.Replay(tr, img)             // re-run to the same BSOD
//	    fmt.Println(res)
//	}
//
// Drivers are d32 machine-code images (see internal/isa for the ISA and
// internal/asm for the assembler used to build the evaluation corpus); DDT
// itself never sees source or symbols.
//
// # Coverage-guided concolic fuzzing
//
// Symbolic exploration is exhaustive per path but bounded by path
// explosion. The fuzzing subsystem (internal/fuzz, command ddtfuzz) runs
// the same driver images and workload phases fully concretely: device
// register reads, registry values, packet bytes, allocation-failure
// decisions and interrupt timings are answered from replayable byte feeds,
// mutated under coverage guidance by a parallel worker pool — orders of
// magnitude more executions per second, one concrete path each. A two-way
// concolic bridge connects the modes: solved inputs from symbolic bug
// traces seed the fuzz corpus, and high-novelty fuzz feeds are lifted back
// into symbolic boot states the engine forks from (Config/engine option
// SymbolSeed). Fuzz and Replay-style feed re-execution are exposed here:
//
//	rep, err := ddt.Fuzz(img, ddt.DefaultFuzzConfig())
//	for _, c := range rep.Crashes {
//	    res := ddt.ReplayFeed(img, c.Feed)     // deterministic reproducer
//	    fmt.Println(c, res.Crash != nil)
//	}
package ddt

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/binimg"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fuzz"
	"repro/internal/trace"
)

// Config selects DDT's testing options, mirroring the paper's setup. The
// campaign envelope (workers, pipeline mode, wall-clock bound, stop
// conditions) is the embedded campaign.Options — the same envelope
// FuzzConfig embeds, so every mode is configured the same way. For the
// symbolic workload: Workers 0 or 1 is the sequential engine (fully
// deterministic); N>1 explores the frontier with N goroutines sharing one
// solver query cache — same bug classes, schedule-dependent path order.
// Pipeline (with Workers > 1) removes the workload phase barriers while
// each path still visits its phases in order. Duration bounds the whole
// session; StopAtFirstBug stops at the first recorded bug.
type Config struct {
	campaign.Options
	// Annotations enables the stock NDIS/WDM interface annotations (§3.4):
	// symbolic registry values, forked allocation failures, symbolic entry
	// arguments. Disabling them is the §5.1 ablation: races and
	// hardware-dependent bugs are still found, failure-path leaks and
	// unexpected-argument crashes are not.
	Annotations bool
	// SymbolicInterrupts injects interrupts at kernel/driver boundary
	// crossings (§3.3).
	SymbolicInterrupts bool
	// VerifierChecks enables the in-guest Driver Verifier-style checkers
	// (§3.1.2).
	VerifierChecks bool
	// MaxStates, MaxStepsPerPath, MaxPathsPerEntry bound the exploration.
	MaxStates        int
	MaxStepsPerPath  uint64
	MaxPathsPerEntry int
	// Registry overrides the simulated registry hive.
	Registry map[string]uint32
	// Scenario selects the workload shape: "linear" runs the classic
	// straight-line phase plan; "pnp" runs the scenario graph with
	// PnP/power alternatives (suspend/resume, surprise removal, IRP
	// cancellation racing the ISR) on classes that define them. Empty
	// picks the class default (storage: "pnp"; everything else: "linear").
	Scenario string
}

// CampaignOptions is the shared campaign execution envelope embedded by
// Config and FuzzConfig (workers, budgets, seed, stop conditions, shared
// coverage).
type CampaignOptions = campaign.Options

// DefaultConfig mirrors the paper's evaluation configuration.
func DefaultConfig() Config {
	o := core.DefaultOptions()
	return Config{
		Annotations:        o.Annotations,
		SymbolicInterrupts: o.SymbolicInterrupts,
		VerifierChecks:     o.VerifierChecks,
		MaxStates:          o.MaxStates,
		MaxStepsPerPath:    o.MaxStepsPerPath,
		MaxPathsPerEntry:   o.MaxPathsPerEntry,
	}
}

func (c Config) options() core.Options {
	o := core.DefaultOptions()
	o.Options = c.Options
	o.Annotations = c.Annotations
	o.SymbolicInterrupts = c.SymbolicInterrupts
	o.VerifierChecks = c.VerifierChecks
	if c.MaxStates > 0 {
		o.MaxStates = c.MaxStates
	}
	if c.MaxStepsPerPath > 0 {
		o.MaxStepsPerPath = c.MaxStepsPerPath
	}
	if c.MaxPathsPerEntry > 0 {
		o.MaxPathsPerEntry = c.MaxPathsPerEntry
	}
	o.Registry = c.Registry
	o.Scenario = c.Scenario
	return o
}

// Re-exported result types.
type (
	// Report is a full DDT run report: bugs, coverage, statistics.
	Report = core.Report
	// Bug is one confirmed undesired behaviour with trace and inputs.
	Bug = core.Bug
	// Image is a parsed closed-source driver binary.
	Image = binimg.Image
	// DriverInfo is the static characterization behind Table 1.
	DriverInfo = binimg.Info
	// Trace is an executable, self-contained bug trace (§3.5).
	Trace = trace.File
	// ReplayResult reports a trace re-execution.
	ReplayResult = trace.Result
)

// LoadDriver parses a DXE driver binary.
func LoadDriver(b []byte) (*Image, error) { return binimg.Parse(b) }

// Inspect statically characterizes a driver binary (file size, code size,
// functions, kernel imports — the columns of Table 1).
func Inspect(img *Image) DriverInfo { return binimg.Analyze(img) }

// Test runs the full DDT workload — load, initialize, data path, query/set,
// interrupts, DPCs, halt — against the driver image and reports every bug
// found, each with an executable trace. Canceling ctx stops the session
// mid-run and returns the bugs found so far.
func Test(ctx context.Context, img *Image, cfg Config) (*Report, error) {
	eng := core.NewEngine(img, cfg.options())
	return eng.TestDriver(ctx)
}

// Session is a reusable handle over one engine run, for callers that want
// traces or custom inspection after Test.
type Session struct {
	eng *core.Engine
	cfg Config
}

// NewSession prepares (but does not run) a DDT session.
func NewSession(img *Image, cfg Config) *Session {
	return &Session{eng: core.NewEngine(img, cfg.options()), cfg: cfg}
}

// Run executes the workload. Canceling ctx stops the session mid-run.
func (s *Session) Run(ctx context.Context) (*Report, error) { return s.eng.TestDriver(ctx) }

// Engine exposes the underlying engine for advanced use (custom phases,
// direct state inspection). Most callers won't need it.
func (s *Session) Engine() *core.Engine { return s.eng }

// TraceBug builds the executable trace for one of this session's bugs.
func (s *Session) TraceBug(b *Bug) *Trace {
	return trace.New(b, s.eng.Img.Name, s.cfg.Annotations, s.eng.EffectiveRegistry())
}

// Replay re-executes a trace against the driver image, verifying the
// recorded bug fires again.
func Replay(t *Trace, img *Image) (*ReplayResult, error) { return trace.Replay(t, img) }

// Bug post-mortem types (§3.6): classify whether a bug needs
// malfunctioning hardware, given the device's documented behaviour.
type (
	// DeviceSpec is the datasheet slice used for hardware-dependence
	// analysis.
	DeviceSpec = analysis.DeviceSpec
	// RegisterRange bounds one register's documented values.
	RegisterRange = analysis.RegisterRange
	// Verdict is the hardware-dependence conclusion for one bug.
	Verdict = analysis.Verdict
	// ExecTree is the reconstructed execution tree over bug traces (§3.5).
	ExecTree = trace.Tree
)

// AnalyzeBug decides, from the bug's trace and solved inputs, whether the
// failure can occur with specification-conforming hardware (§3.6). A nil
// spec still reports hardware dependence, just not malfunction.
func AnalyzeBug(b *Bug, spec *DeviceSpec) *Verdict { return analysis.Analyze(b, spec) }

// BuildExecTree merges bug traces into the execution tree of explored
// paths: shared prefixes appear once; each leaf is one failure (§3.5).
func BuildExecTree(traces []*Trace) *ExecTree { return trace.BuildTree(traces) }

// Coverage-guided fuzzing re-exports (internal/fuzz).
type (
	// FuzzConfig configures a fuzzing campaign.
	FuzzConfig = fuzz.Config
	// FuzzReport summarizes a fuzzing campaign.
	FuzzReport = fuzz.Report
	// FuzzCrash is one deduplicated concrete crash with a replayable feed.
	FuzzCrash = fuzz.Crash
	// Feed is a replayable concrete input stream (the fuzzer's genome).
	Feed = fuzz.Feed
	// FeedResult is the outcome of re-executing one feed.
	FeedResult = fuzz.ExecResult
	// FuzzOptions configure the concrete executor (annotation injection,
	// step/interrupt bounds, registry overrides).
	FuzzOptions = fuzz.Options
	// HybridReport is the outcome of a two-way concolic campaign.
	HybridReport = fuzz.HybridReport
)

// DefaultFuzzConfig returns the stock fuzzing campaign configuration.
func DefaultFuzzConfig() FuzzConfig { return fuzz.DefaultConfig() }

// Fuzz runs a coverage-guided concrete fuzzing campaign against the driver
// image: the same workload phases as Test, driven by mutated feeds instead
// of symbolic values. Canceling ctx stops the campaign; results of
// executions still in flight at cancellation are not admitted, so the
// report is frozen when Fuzz returns.
func Fuzz(ctx context.Context, img *Image, cfg FuzzConfig) (*FuzzReport, error) {
	return fuzz.New(img, cfg).Run(ctx)
}

// ReplayFeed deterministically re-executes one feed under the default
// executor options. A feed from a campaign with non-default FuzzConfig.Exec
// must be replayed with ReplayFeedWith and the report's Exec options —
// annotation sites consume feed words, so mismatched options shift the
// whole stream.
func ReplayFeed(img *Image, f *Feed) *FeedResult {
	return ReplayFeedWith(img, f, fuzz.DefaultOptions())
}

// ReplayFeedWith re-executes a feed under explicit executor options
// (FuzzReport.Exec records the options a campaign ran with).
func ReplayFeedWith(img *Image, f *Feed, opts FuzzOptions) *FeedResult {
	return fuzz.NewExecutor(img, nil, opts).Run(f)
}

// UnmarshalFeed parses a serialized feed (the reproducer exchange format;
// Feed.Marshal is the inverse).
func UnmarshalFeed(b []byte) (*Feed, error) { return fuzz.UnmarshalFeed(b) }

// HybridTest runs the two-way concolic loop: a symbolic pass seeds the
// fuzzer with solved bug inputs, the fuzzer explores concretely, and its
// most interesting feeds are lifted back into symbolic boot states.
// Canceling ctx stops whichever stage is in flight.
func HybridTest(ctx context.Context, img *Image, fcfg FuzzConfig, cfg Config) (*HybridReport, error) {
	return fuzz.Hybrid(ctx, img, fcfg, cfg.options(), 2)
}

// CorpusDriver assembles one of the in-tree evaluation drivers (Table 1):
// "rtl8029", "amd-pcnet", "intel-pro1000", "intel-pro100",
// "ensoniq-audiopci", "intel-ac97", "ddk-sample", "ddk-sample-synthetic".
// fixed selects the corrected variant (used to validate the
// zero-false-positive property).
func CorpusDriver(name string, fixed bool) (*Image, error) {
	v := corpus.Buggy
	if fixed {
		v = corpus.Fixed
	}
	return corpus.Build(name, v)
}

// CorpusNames lists the in-tree evaluation drivers.
func CorpusNames() []string { return corpus.Names() }

// ExpectedBugs returns the Table 2 bug classes planted in a corpus driver.
func ExpectedBugs(name string) ([]string, error) {
	spec, ok := corpus.Get(name)
	if !ok {
		return nil, fmt.Errorf("ddt: unknown corpus driver %q", name)
	}
	return append([]string(nil), spec.ExpectedBugs...), nil
}
